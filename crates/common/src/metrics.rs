//! Engine metrics registry: counters, gauges, and histograms.
//!
//! [`Metrics`] is a cheaply-cloneable handle over shared state, the same
//! `Rc<RefCell<..>>` idiom as [`crate::Cost`]: every layer that holds a
//! clone observes (and contributes to) the same registry. The engine is
//! simulated and single-threaded, so there is no atomics machinery —
//! determinism is the point: two identical runs must produce bit-identical
//! [`MetricsSnapshot`]s.
//!
//! Names are dotted paths (`"pool.hits"`, `"disk.read.f3"`,
//! `"mv.tuples_emitted"`). Instruments are created on first touch; reading
//! a never-touched counter yields 0 rather than registering it.
//!
//! Counters are *interned*: each name maps to a stable [`CounterId`] slot,
//! and hot loops that pre-resolve a handle via [`Metrics::counter_handle`]
//! bump a plain array cell — no string hash, no allocation, no tree walk.
//! The string-keyed methods remain as a thin compatibility layer over the
//! same slots, so both paths observe identical state. Handles stay valid
//! across [`Metrics::reset`] (the intern table is retained; only values are
//! cleared), which lets long-lived components resolve their counters once
//! at construction.

use crate::fx::FxHashMap;
use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Interned handle for one counter in one [`Metrics`] registry.
///
/// Obtained from [`Metrics::counter_handle`]; bumping through a handle is
/// an array index instead of a string hash. Handles are only meaningful
/// for the registry (or a clone of it) that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Number of power-of-two buckets a [`Histogram`] keeps (`2^0 .. 2^62`,
/// plus a final overflow bucket).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket histogram over non-negative integer samples
/// (microsecond durations, byte sizes, run lengths).
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also holds 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Log2 bucket counts.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: 0, max: 0, buckets: vec![0; HISTOGRAM_BUCKETS] }
    }
}

impl Histogram {
    fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
        let bucket = if sample == 0 {
            0
        } else {
            (63 - sample.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate of the sample at rank `ceil(p * count)` (1-based, clamped
    /// into `[1, count]`). Rank 1 is exactly `min` and rank `count` exactly
    /// `max`; an interior rank resolves to the lower edge of the bucket
    /// holding it, clamped into `[min, max]`. That makes single-sample and
    /// duplicate-heavy distributions exact and bounds everything else by
    /// one power-of-two bucket. Returns 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                return lower.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other`'s samples into this histogram (bucket-wise). Exact for
    /// count/sum/min/max/buckets — the merge of per-shard histograms equals
    /// the histogram a single registry would have recorded.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// One interned counter slot. `touched` distinguishes "registered by an
/// add (possibly of 0)" from "merely handle-resolved": snapshots include
/// only touched slots, preserving the first-touch registration semantics
/// the string API always had.
#[derive(Debug)]
struct CounterSlot {
    name: String,
    value: u64,
    touched: bool,
}

#[derive(Debug, Default)]
struct Registry {
    counter_ids: FxHashMap<String, usize>,
    counter_slots: Vec<CounterSlot>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.counter_ids.get(name) {
            return id;
        }
        let id = self.counter_slots.len();
        self.counter_slots.push(CounterSlot { name: name.to_string(), value: 0, touched: false });
        self.counter_ids.insert(name.to_string(), id);
        id
    }
}

/// Shared handle to the metrics registry. Clones alias the same state.
#[derive(Debug, Clone, Default)]
pub struct Metrics(Rc<RefCell<Registry>>);

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Resolve (interning if needed) the stable handle for a counter,
    /// without registering it: a handle-only counter stays out of
    /// snapshots until the first add through it.
    pub fn counter_handle(&self, name: &str) -> CounterId {
        CounterId(self.0.borrow_mut().intern(name))
    }

    /// Add `delta` to the counter behind an interned handle — the hot-loop
    /// path: one array index, no hashing.
    #[inline]
    pub fn counter_add_id(&self, id: CounterId, delta: u64) {
        let mut reg = self.0.borrow_mut();
        let slot = &mut reg.counter_slots[id.0];
        slot.value += delta;
        slot.touched = true;
    }

    /// Increment the counter behind an interned handle by one.
    #[inline]
    pub fn incr_id(&self, id: CounterId) {
        self.counter_add_id(id, 1);
    }

    /// Current value of the counter behind an interned handle.
    #[inline]
    pub fn counter_id(&self, id: CounterId) -> u64 {
        self.0.borrow().counter_slots[id.0].value
    }

    /// Add `delta` to the named counter (created at 0 on first touch).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut reg = self.0.borrow_mut();
        let id = reg.intern(name);
        let slot = &mut reg.counter_slots[id];
        slot.value += delta;
        slot.touched = true;
    }

    /// Increment the named counter by one.
    pub fn incr(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Current value of a counter (0 if never touched). Reading never
    /// registers the counter.
    pub fn counter(&self, name: &str) -> u64 {
        let reg = self.0.borrow();
        match reg.counter_ids.get(name) {
            Some(&id) => reg.counter_slots[id].value,
            None => 0,
        }
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.0.borrow_mut().gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.0.borrow().gauges.get(name).copied()
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, sample: u64) {
        self.0.borrow_mut().histograms.entry(name.to_string()).or_default().record(sample);
    }

    /// Copy of the named histogram (`None` if never observed).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.0.borrow().histograms.get(name).cloned()
    }

    /// Visit every touched counter as `(slot, name, value)` without
    /// allocating. Slot ids are stable for the registry's lifetime
    /// (interned in first-touch order), so callers can keep slot-indexed
    /// baselines — the telemetry window-close path, which runs too often
    /// to afford a full [`Metrics::snapshot`].
    pub fn visit_counters(&self, mut f: impl FnMut(usize, &str, u64)) {
        let reg = self.0.borrow();
        for (id, slot) in reg.counter_slots.iter().enumerate() {
            if slot.touched {
                f(id, &slot.name, slot.value);
            }
        }
    }

    /// Visit every gauge in name order without allocating.
    pub fn visit_gauges(&self, mut f: impl FnMut(&str, f64)) {
        for (k, v) in self.0.borrow().gauges.iter() {
            f(k, *v);
        }
    }

    /// Visit every histogram in name order without allocating.
    pub fn visit_histograms(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (k, h) in self.0.borrow().histograms.iter() {
            f(k, h);
        }
    }

    /// Clear every instrument (used between measured phases, mirroring
    /// [`crate::Cost::reset`]). The counter intern table survives — values
    /// drop to zero and slots leave snapshots until touched again — so
    /// pre-resolved [`CounterId`] handles stay valid across resets.
    pub fn reset(&self) {
        let mut reg = self.0.borrow_mut();
        for slot in &mut reg.counter_slots {
            slot.value = 0;
            slot.touched = false;
        }
        reg.gauges.clear();
        reg.histograms.clear();
    }

    /// Point-in-time copy of the whole registry, ordered by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.0.borrow();
        let mut counters: Vec<(String, u64)> = reg
            .counter_slots
            .iter()
            .filter(|s| s.touched)
            .map(|s| (s.name.clone(), s.value))
            .collect();
        counters.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        MetricsSnapshot {
            counters,
            gauges: reg.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: reg.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

/// An immutable, comparable copy of the registry at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Counter value from the snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Gauge value from the snapshot (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram from the snapshot (`None` if absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Fold `other` into this snapshot: counters and gauges add, histograms
    /// merge bucket-wise, and name order stays sorted. Adding gauges makes
    /// per-shard capacity gauges (`pool.resident`, ...) roll up to fleet
    /// totals; point-in-time gauges should be read per shard instead.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn fold<V: Clone>(
            mine: &mut Vec<(String, V)>,
            theirs: &[(String, V)],
            add: impl Fn(&mut V, &V),
        ) {
            for (name, value) in theirs {
                match mine.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                    Ok(i) => add(&mut mine[i].1, value),
                    Err(i) => mine.insert(i, (name.clone(), value.clone())),
                }
            }
        }
        fold(&mut self.counters, &other.counters, |a, b| *a += *b);
        fold(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        fold(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
    }

    /// Serialize for embedding in a run report.
    pub fn to_json(&self) -> Json {
        let counters = self.counters.iter().fold(Json::obj(), |acc, (k, v)| acc.set(k, *v));
        let gauges = self.gauges.iter().fold(Json::obj(), |acc, (k, v)| acc.set(k, *v));
        let histograms = self.histograms.iter().fold(Json::obj(), |acc, (k, h)| {
            // Trailing zero buckets are elided; `from_json` re-pads.
            let occupied = h.buckets.iter().rposition(|&c| c != 0).map(|i| i + 1).unwrap_or(0);
            acc.set(
                k,
                Json::obj()
                    .set("count", h.count)
                    .set("sum", h.sum)
                    .set("min", h.min)
                    .set("max", h.max)
                    .set(
                        "buckets",
                        Json::Arr(h.buckets[..occupied].iter().map(|&c| Json::from(c)).collect()),
                    ),
            )
        });
        Json::obj().set("counters", counters).set("gauges", gauges).set("histograms", histograms)
    }

    /// Inverse of [`MetricsSnapshot::to_json`].
    pub fn from_json(json: &Json) -> Result<MetricsSnapshot, String> {
        let obj_pairs = |key: &str| -> Result<Vec<(String, Json)>, String> {
            match json.get(key) {
                Some(Json::Obj(members)) => Ok(members.clone()),
                _ => Err(format!("metrics: missing object {key:?}")),
            }
        };
        let counters = obj_pairs("counters")?
            .into_iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("metrics: counter {k:?} not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = obj_pairs("gauges")?
            .into_iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("metrics: gauge {k:?} not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = obj_pairs("histograms")?
            .into_iter()
            .map(|(k, v)| -> Result<(String, Histogram), String> {
                let field = |f: &str| {
                    v.get(f)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("metrics: histogram {k:?} missing {f:?}"))
                };
                let mut buckets: Vec<u64> = v
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("metrics: histogram {k:?} missing buckets"))?
                    .iter()
                    .map(|b| b.as_u64().ok_or_else(|| format!("metrics: bad bucket in {k:?}")))
                    .collect::<Result<Vec<_>, _>>()?;
                buckets.resize(HISTOGRAM_BUCKETS, 0);
                Ok((
                    k.clone(),
                    Histogram {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsSnapshot { counters, gauges, histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::new();
        let alias = m.clone();
        m.incr("pool.hits");
        alias.counter_add("pool.hits", 2);
        assert_eq!(m.counter("pool.hits"), 3);
        assert_eq!(m.counter("never.touched"), 0);
    }

    #[test]
    fn interned_handles_alias_string_counters() {
        let m = Metrics::new();
        let id = m.counter_handle("pool.hits");
        // Handle resolution alone does not register the counter.
        assert!(m.snapshot().counters.is_empty());
        m.incr_id(id);
        m.counter_add("pool.hits", 2);
        assert_eq!(m.counter("pool.hits"), 3);
        assert_eq!(m.counter_id(id), 3);
        // Same name resolves to the same slot, including on clones.
        assert_eq!(m.clone().counter_handle("pool.hits"), id);
    }

    #[test]
    fn handles_survive_reset() {
        let m = Metrics::new();
        let id = m.counter_handle("disk.reads");
        m.counter_add_id(id, 5);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        m.incr_id(id);
        assert_eq!(m.counter("disk.reads"), 1);
        assert_eq!(m.snapshot().counters, vec![("disk.reads".to_string(), 1)]);
    }

    #[test]
    fn zero_delta_add_registers_the_counter() {
        // `counter_add(name, 0)` has always created the entry; the interned
        // slots must preserve that first-touch semantics.
        let m = Metrics::new();
        m.counter_add("hh.recoveries", 0);
        assert_eq!(m.snapshot().counters, vec![("hh.recoveries".to_string(), 0)]);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        assert_eq!(m.gauge("pool.resident"), None);
        m.gauge_set("pool.resident", 7.0);
        m.gauge_set("pool.resident", 5.0);
        assert_eq!(m.gauge("pool.resident"), Some(5.0));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = Metrics::new();
        for sample in [0, 1, 1, 3, 8, 1024] {
            m.observe("query.us", sample);
        }
        let h = m.histogram("query.us").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1037);
        assert_eq!((h.min, h.max), (0, 1024));
        assert_eq!(h.buckets[0], 3); // 0, 1, 1
        assert_eq!(h.buckets[1], 1); // 3
        assert_eq!(h.buckets[3], 1); // 8
        assert_eq!(h.buckets[10], 1); // 1024
        assert!((h.mean() - 1037.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_match_exact_on_known_distributions() {
        // Single sample: every quantile is that sample, exactly.
        let m = Metrics::new();
        m.observe("one", 37);
        let h = m.histogram("one").unwrap();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), 37, "p={p}");
        }

        // Duplicate-heavy: 99 copies of 10 and one 1000 — p50 must be 10
        // and p99 must stay 10 (rank 99 of 100), p100 the outlier's bucket.
        let m = Metrics::new();
        for _ in 0..99 {
            m.observe("dup", 10);
        }
        m.observe("dup", 1000);
        let h = m.histogram("dup").unwrap();
        assert_eq!(h.quantile(0.50), 10);
        assert_eq!(h.quantile(0.99), 10);
        assert_eq!(h.quantile(1.0), 1000, "rank == count returns max exactly");

        // Powers of two land on their bucket lower edges: every rank of
        // this distribution comes back exact.
        let m = Metrics::new();
        for sample in [1u64, 2, 4, 8] {
            m.observe("pow", sample);
        }
        let h = m.histogram("pow").unwrap();
        assert_eq!(h.quantile(0.25), 1, "rank 1 returns min exactly");
        assert_eq!(h.quantile(0.5), 2, "rank 2: bucket [2,4) lower edge");
        assert_eq!(h.quantile(0.75), 4, "rank 3: bucket [4,8) lower edge");
        assert_eq!(h.quantile(1.0), 8, "rank 4 returns max exactly");

        // Empty histogram yields 0, never panics.
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_detached() {
        let run = || {
            let m = Metrics::new();
            m.incr("b");
            m.incr("a");
            m.observe("h", 5);
            m.gauge_set("g", 1.5);
            m.snapshot()
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1, s2);
        // Snapshots are copies: later registry changes don't leak in.
        let m = Metrics::new();
        m.incr("a");
        let snap = m.snapshot();
        m.incr("a");
        assert_eq!(snap.counter("a"), 1);
        assert_eq!(m.counter("a"), 2);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let m = Metrics::new();
        m.counter_add("disk.read.f0", 12);
        m.gauge_set("pool.resident", 3.0);
        m.observe("run.len", 100);
        m.observe("run.len", 0);
        let snap = m.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_equals_single_registry() {
        // Two "shards" recording disjoint and overlapping instruments must
        // merge to exactly what one registry recording everything holds.
        let a = Metrics::new();
        let b = Metrics::new();
        let all = Metrics::new();
        for (m, samples) in [(&a, [1u64, 8]), (&b, [0, 1024])] {
            for s in samples {
                m.observe("query.us", s);
                all.observe("query.us", s);
            }
        }
        a.counter_add("disk.reads", 3);
        all.counter_add("disk.reads", 3);
        b.counter_add("disk.reads", 4);
        all.counter_add("disk.reads", 4);
        b.incr("only.b");
        all.incr("only.b");
        a.gauge_set("pool.resident", 2.0);
        all.gauge_set("pool.resident", 2.0 + 5.0);
        b.gauge_set("pool.resident", 5.0);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.counter("only.b"), 1);
        assert_eq!(merged.histogram("query.us").unwrap().count, 4);
        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&MetricsSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn histogram_merge_handles_empty_sides() {
        let m = Metrics::new();
        m.observe("h", 7);
        let recorded = m.histogram("h").unwrap();
        let mut empty = Histogram::default();
        empty.merge(&recorded);
        assert_eq!(empty, recorded);
        let mut copy = recorded.clone();
        copy.merge(&Histogram::default());
        assert_eq!(copy, recorded);
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.incr("a");
        m.gauge_set("g", 2.0);
        m.observe("h", 9);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
