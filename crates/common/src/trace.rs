//! Machine-readable run reports.
//!
//! A [`RunReport`] bundles everything the observability layer knows about
//! one run — the [`SystemParams`] it was priced under, the ledger grand
//! total and span tree, a metrics snapshot, the retained event log, and any
//! model-vs-engine deltas — into one value that serializes to JSON
//! ([`RunReport::to_json`]) and parses back ([`RunReport::from_json`]) with
//! full equality. Bench binaries write these next to their text output;
//! `trijoin --report <path>` emits one per run; `ci.sh` schema-checks one.
//!
//! The stable top-level JSON keys are `name`, `params`, `totals`, `spans`,
//! `metrics`, `events`, and `deltas`; runs with telemetry enabled add
//! `series` (omitted entirely when no sampler ran, so telemetry-free
//! reports — including the pinned goldens — are byte-identical to before
//! the subsystem existed).

use crate::cost::{Cost, OpCounts, SpanRecord};
use crate::events::{Event, EventLog};
use crate::json::Json;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::params::SystemParams;
use crate::telemetry::SeriesSnapshot;

/// Serialize an [`OpCounts`] as `{ios, comps, hashes, moves}`.
pub fn ops_to_json(ops: &OpCounts) -> Json {
    Json::obj()
        .set("ios", ops.ios)
        .set("comps", ops.comps)
        .set("hashes", ops.hashes)
        .set("moves", ops.moves)
}

/// Inverse of [`ops_to_json`].
pub fn ops_from_json(json: &Json) -> Result<OpCounts, String> {
    let field = |f: &str| {
        json.get(f).and_then(Json::as_u64).ok_or_else(|| format!("ops: missing field {f:?}"))
    };
    Ok(OpCounts {
        ios: field("ios")?,
        comps: field("comps")?,
        hashes: field("hashes")?,
        moves: field("moves")?,
    })
}

fn params_to_json(params: &SystemParams) -> Json {
    Json::obj()
        .set("mem_pages", params.mem_pages)
        .set("hash_overhead", params.hash_overhead)
        .set("page_size", params.page_size)
        .set("page_occupancy", params.page_occupancy)
        .set("fan_out", params.fan_out)
        .set("ssur", params.ssur)
        .set("sptr", params.sptr)
        .set("io_us", params.io_us)
        .set("comp_us", params.comp_us)
        .set("hash_us", params.hash_us)
        .set("move_us", params.move_us)
}

fn params_from_json(json: &Json) -> Result<SystemParams, String> {
    let uint = |f: &str| {
        json.get(f)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("params: missing field {f:?}"))
    };
    let num = |f: &str| {
        json.get(f).and_then(Json::as_f64).ok_or_else(|| format!("params: missing field {f:?}"))
    };
    Ok(SystemParams {
        mem_pages: uint("mem_pages")?,
        hash_overhead: num("hash_overhead")?,
        page_size: uint("page_size")?,
        page_occupancy: num("page_occupancy")?,
        fan_out: uint("fan_out")?,
        ssur: uint("ssur")?,
        sptr: uint("sptr")?,
        io_us: num("io_us")?,
        comp_us: num("comp_us")?,
        hash_us: num("hash_us")?,
        move_us: num("move_us")?,
    })
}

fn span_to_json(span: &SpanRecord) -> Json {
    Json::obj()
        .set("name", span.name.as_str())
        .set("path", span.path.as_str())
        .set("depth", span.depth)
        .set("self_ops", ops_to_json(&span.self_ops))
        .set("cum_ops", ops_to_json(&span.cum_ops))
        .set("invocations", span.invocations)
        .set("first_enter", span.first_enter)
        .set("last_exit", span.last_exit)
        .set("start_total", ops_to_json(&span.start_total))
        .set("end_total", ops_to_json(&span.end_total))
}

fn span_from_json(json: &Json) -> Result<SpanRecord, String> {
    let text = |f: &str| {
        json.get(f)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("span: missing field {f:?}"))
    };
    let uint = |f: &str| {
        json.get(f).and_then(Json::as_u64).ok_or_else(|| format!("span: missing field {f:?}"))
    };
    let ops = |f: &str| {
        json.get(f).ok_or_else(|| format!("span: missing field {f:?}")).and_then(ops_from_json)
    };
    Ok(SpanRecord {
        name: text("name")?,
        path: text("path")?,
        depth: uint("depth")? as usize,
        self_ops: ops("self_ops")?,
        cum_ops: ops("cum_ops")?,
        invocations: uint("invocations")?,
        first_enter: uint("first_enter")?,
        last_exit: uint("last_exit")?,
        start_total: ops("start_total")?,
        end_total: ops("end_total")?,
    })
}

/// One engine-vs-model comparison line: how far the measured engine drifted
/// from the analytical prediction for a labelled quantity (a method, or a
/// per-section slice of one).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDelta {
    /// What is being compared (`"mv"`, `"ji.read_index"`, ...).
    pub label: String,
    /// Measured simulated seconds from the engine ledger.
    pub engine_secs: f64,
    /// Predicted seconds from the analytical cost model.
    pub model_secs: f64,
}

impl ModelDelta {
    /// `engine/model` ratio; 1.0 means perfect agreement. Returns
    /// `engine_secs` when the model predicts zero.
    pub fn ratio(&self) -> f64 {
        if self.model_secs == 0.0 {
            self.engine_secs
        } else {
            self.engine_secs / self.model_secs
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .set("label", self.label.as_str())
            .set("engine_secs", self.engine_secs)
            .set("model_secs", self.model_secs)
    }

    fn from_json(json: &Json) -> Result<ModelDelta, String> {
        Ok(ModelDelta {
            label: json
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| "delta: missing label".to_string())?
                .to_string(),
            engine_secs: json
                .get("engine_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| "delta: missing engine_secs".to_string())?,
            model_secs: json
                .get("model_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| "delta: missing model_secs".to_string())?,
        })
    }
}

/// Everything observed about one run, in one serializable value.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// What ran (`"trijoin run --strategy mv"`, `"fig5_engine"`, ...).
    pub name: String,
    /// Parameters the run was priced under.
    pub params: SystemParams,
    /// Ledger grand total.
    pub totals: OpCounts,
    /// Span tree in pre-order (see [`Cost::span_tree`]).
    pub spans: Vec<SpanRecord>,
    /// Metrics registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Engine-vs-model drift observations (empty when no model ran).
    pub deltas: Vec<ModelDelta>,
    /// Windowed telemetry series (empty when no sampler was enabled).
    pub series: Vec<SeriesSnapshot>,
}

impl RunReport {
    /// Snapshot the live observability handles into a report.
    pub fn capture(
        name: impl Into<String>,
        params: &SystemParams,
        cost: &Cost,
        metrics: &Metrics,
        events: &EventLog,
    ) -> RunReport {
        let mut snapshot = metrics.snapshot();
        // Ring overflow is not silent: runs that evicted events carry the
        // count as a counter. Injected only on overflow so the reports of
        // runs that never overflow (goldens included) are unchanged.
        let dropped = events.dropped();
        if dropped > 0 {
            let mut patch = MetricsSnapshot::default();
            patch.counters.push(("events.dropped".to_string(), dropped));
            snapshot.merge(&patch);
        }
        RunReport {
            name: name.into(),
            params: params.clone(),
            totals: cost.total(),
            spans: cost.span_tree(),
            metrics: snapshot,
            events: events.events(),
            deltas: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Serialize. Top-level keys: `name`, `params`, `totals`, `spans`,
    /// `metrics`, `events`, `deltas`, plus `series` when telemetry ran.
    pub fn to_json(&self) -> Json {
        let json = Json::obj()
            .set("name", self.name.as_str())
            .set("params", params_to_json(&self.params))
            .set("totals", ops_to_json(&self.totals))
            .set("spans", Json::Arr(self.spans.iter().map(span_to_json).collect()))
            .set("metrics", self.metrics.to_json())
            .set("events", Json::Arr(self.events.iter().map(Event::to_json).collect()))
            .set("deltas", Json::Arr(self.deltas.iter().map(ModelDelta::to_json).collect()));
        if self.series.is_empty() {
            json
        } else {
            json.set("series", Json::Arr(self.series.iter().map(SeriesSnapshot::to_json).collect()))
        }
    }

    /// Inverse of [`RunReport::to_json`].
    pub fn from_json(json: &Json) -> Result<RunReport, String> {
        let arr = |f: &str| {
            json.get(f).and_then(Json::as_arr).ok_or_else(|| format!("report: missing array {f:?}"))
        };
        Ok(RunReport {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "report: missing name".to_string())?
                .to_string(),
            params: params_from_json(
                json.get("params").ok_or_else(|| "report: missing params".to_string())?,
            )?,
            totals: ops_from_json(
                json.get("totals").ok_or_else(|| "report: missing totals".to_string())?,
            )?,
            spans: arr("spans")?.iter().map(span_from_json).collect::<Result<_, _>>()?,
            metrics: MetricsSnapshot::from_json(
                json.get("metrics").ok_or_else(|| "report: missing metrics".to_string())?,
            )?,
            events: arr("events")?.iter().map(Event::from_json).collect::<Result<_, _>>()?,
            deltas: arr("deltas")?.iter().map(ModelDelta::from_json).collect::<Result<_, _>>()?,
            series: match json.get("series") {
                // Absent = no telemetry ran (the pre-telemetry schema).
                None => Vec::new(),
                Some(Json::Arr(items)) => {
                    items.iter().map(SeriesSnapshot::from_json).collect::<Result<_, _>>()?
                }
                Some(_) => return Err("report: series is not an array".to_string()),
            },
        })
    }

    /// Parse a report from JSON text.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        RunReport::from_json(&Json::parse(text)?)
    }

    /// Buffer-pool hit rate derived from the report's `pool.hits` /
    /// `pool.misses` counters: hits / (hits + misses), 0.0 for an idle pool.
    pub fn pool_hit_rate(&self) -> f64 {
        let hits = self.metrics.counter("pool.hits") as f64;
        let total = hits + self.metrics.counter("pool.misses") as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Buffer-pool eviction rate derived from the report's counters:
    /// evictions / misses (every eviction is triggered by a miss), 0.0
    /// when the pool never missed.
    pub fn pool_eviction_rate(&self) -> f64 {
        let misses = self.metrics.counter("pool.misses") as f64;
        if misses == 0.0 {
            0.0
        } else {
            self.metrics.counter("pool.evictions") as f64 / misses
        }
    }

    /// Cumulative ops of a named section, aggregated across the span tree
    /// (the report-side equivalent of [`Cost::section_counts`]).
    pub fn section_counts(&self, name: &str) -> OpCounts {
        let mut total = OpCounts::default();
        for span in self.spans.iter().filter(|s| s.name == name) {
            total.add(&span.cum_ops);
        }
        total
    }
}

/// The observability state of one sharded serving run: every shard's own
/// [`RunReport`] plus a server-level rollup.
///
/// The rollup is a *pure aggregate* of the shard reports — totals and span
/// ops sum, metrics merge ([`MetricsSnapshot::merge`]), and events interleave
/// with a `shardN:` detail prefix — so "shard metrics sum to rollup totals"
/// is an invariant tests can assert, not a convention. A server may overlay
/// additional scheduler-level instruments into `rollup.metrics` afterwards
/// under names no shard emits (the `serve.` prefix).
///
/// The stable top-level JSON keys are `name`, `shards`, and `rollup`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRunReport {
    /// What ran (`"trijoin serve --shards 4"`, ...).
    pub name: String,
    /// One report per shard, in shard-index order.
    pub shards: Vec<RunReport>,
    /// The server-level aggregate of the shard reports.
    pub rollup: RunReport,
}

impl ShardedRunReport {
    /// Aggregate per-shard reports into a server-level rollup. Span nodes
    /// are merged by tree path (ops and invocation counts sum; enter/exit
    /// stamps widen), appearing in first-seen pre-order across shards —
    /// shard threads run the same code, so this is shard 0's tree with any
    /// shard-specific paths appended.
    pub fn rollup_of(
        name: impl Into<String>,
        params: &SystemParams,
        shards: Vec<RunReport>,
    ) -> Self {
        let name = name.into();
        let mut totals = OpCounts::default();
        let mut spans: Vec<SpanRecord> = Vec::new();
        let mut span_index: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut metrics = MetricsSnapshot::default();
        let mut events: Vec<Event> = Vec::new();
        let mut deltas = Vec::new();
        let mut series: Vec<SeriesSnapshot> = Vec::new();
        for (idx, shard) in shards.iter().enumerate() {
            totals.add(&shard.totals);
            for span in &shard.spans {
                match span_index.get(&span.path) {
                    Some(&i) => {
                        let merged = &mut spans[i];
                        merged.self_ops.add(&span.self_ops);
                        merged.cum_ops.add(&span.cum_ops);
                        merged.start_total.add(&span.start_total);
                        merged.end_total.add(&span.end_total);
                        merged.invocations += span.invocations;
                        merged.first_enter = merged.first_enter.min(span.first_enter);
                        merged.last_exit = merged.last_exit.max(span.last_exit);
                    }
                    None => {
                        span_index.insert(span.path.clone(), spans.len());
                        spans.push(span.clone());
                    }
                }
            }
            metrics.merge(&shard.metrics);
            for event in &shard.events {
                let mut event = event.clone();
                event.detail = format!("shard{idx}: {}", event.detail);
                events.push(event);
            }
            deltas.extend(shard.deltas.iter().cloned());
            // Same-named series merge window-by-window (aligned on the
            // monotone window index), so the rollup carries one fleet-wide
            // "engine" series rather than one per shard.
            for snapshot in &shard.series {
                match series
                    .iter_mut()
                    .find(|s| s.name == snapshot.name && s.domain == snapshot.domain)
                {
                    Some(s) => s.merge(snapshot),
                    None => series.push(snapshot.clone()),
                }
            }
        }
        // Interleave shard event streams round-robin by per-shard sequence
        // number (there is no global clock), then re-sequence. The sort is
        // stable, so ties keep shard-index order — fully deterministic.
        events.sort_by_key(|e| e.seq);
        for (seq, event) in events.iter_mut().enumerate() {
            event.seq = seq as u64;
        }
        let rollup = RunReport {
            name: format!("{name}.rollup"),
            params: params.clone(),
            totals,
            spans,
            metrics,
            events,
            deltas,
            series,
        };
        ShardedRunReport { name, shards, rollup }
    }

    /// Serialize. Top-level keys: `name`, `shards`, `rollup`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("shards", Json::Arr(self.shards.iter().map(RunReport::to_json).collect()))
            .set("rollup", self.rollup.to_json())
    }

    /// Inverse of [`ShardedRunReport::to_json`].
    pub fn from_json(json: &Json) -> Result<ShardedRunReport, String> {
        Ok(ShardedRunReport {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "sharded report: missing name".to_string())?
                .to_string(),
            shards: json
                .get("shards")
                .and_then(Json::as_arr)
                .ok_or_else(|| "sharded report: missing shards array".to_string())?
                .iter()
                .map(RunReport::from_json)
                .collect::<Result<_, _>>()?,
            rollup: RunReport::from_json(
                json.get("rollup").ok_or_else(|| "sharded report: missing rollup".to_string())?,
            )?,
        })
    }

    /// Parse a sharded report from JSON text.
    pub fn parse(text: &str) -> Result<ShardedRunReport, String> {
        ShardedRunReport::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn sample_report() -> RunReport {
        let params = SystemParams::test_small();
        let cost = Cost::new();
        let metrics = Metrics::new();
        let events = EventLog::new();
        events.emit(EventKind::QueryStart, "strategy=mv", cost.total());
        {
            let _q = cost.section("mv.scan_view");
            cost.io(3);
            {
                let _n = cost.section("mv.point_lookup");
                cost.comp(7);
            }
        }
        metrics.incr("db.queries");
        metrics.observe("query.us", 75_021);
        metrics.gauge_set("pool.resident", 2.0);
        events.emit(EventKind::QueryEnd, "strategy=mv", cost.total());
        let mut report = RunReport::capture("unit", &params, &cost, &metrics, &events);
        report.deltas.push(ModelDelta {
            label: "mv".to_string(),
            engine_secs: 0.075,
            model_secs: 0.074,
        });
        report
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn has_the_stable_top_level_keys() {
        let json = sample_report().to_json();
        for key in ["name", "params", "totals", "spans", "metrics", "events", "deltas"] {
            assert!(json.get(key).is_some(), "missing top-level key {key:?}");
        }
    }

    #[test]
    fn capture_matches_live_ledger() {
        let report = sample_report();
        assert_eq!(report.totals.ios, 3);
        assert_eq!(report.totals.comps, 7);
        assert_eq!(report.section_counts("mv.scan_view").comps, 7); // cumulative
        assert_eq!(report.section_counts("mv.point_lookup").comps, 7);
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.metrics.counter("db.queries"), 1);
    }

    #[test]
    fn pool_rates_derive_from_counters() {
        let mut report = sample_report();
        assert_eq!(report.pool_hit_rate(), 0.0, "no pool traffic: 0, not NaN");
        assert_eq!(report.pool_eviction_rate(), 0.0);
        report.metrics.counters.push(("pool.evictions".into(), 1));
        report.metrics.counters.push(("pool.hits".into(), 3));
        report.metrics.counters.push(("pool.misses".into(), 1));
        assert!((report.pool_hit_rate() - 0.75).abs() < 1e-12, "3 hits / 4 accesses");
        assert!((report.pool_eviction_rate() - 1.0).abs() < 1e-12, "1 eviction / 1 miss");
    }

    #[test]
    fn delta_ratio() {
        let d = ModelDelta { label: "x".into(), engine_secs: 2.0, model_secs: 4.0 };
        assert!((d.ratio() - 0.5).abs() < 1e-12);
        let z = ModelDelta { label: "x".into(), engine_secs: 2.0, model_secs: 0.0 };
        assert!((z.ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_pool_report_round_trips_without_nan() {
        // A report from a run with zero pool traffic must serialize finite
        // numbers everywhere (rates are 0, not NaN) and round-trip exactly.
        let report = sample_report();
        assert_eq!(report.pool_hit_rate(), 0.0);
        let mut json = report.to_json();
        json = json
            .set("hit_rate", report.pool_hit_rate())
            .set("eviction_rate", report.pool_eviction_rate());
        let text = json.pretty();
        assert!(!text.contains("NaN") && !text.contains("inf"), "non-finite leaked: {text}");
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn series_round_trip_and_omission() {
        use crate::telemetry::{Telemetry, TelemetryConfig};
        // Telemetry-free reports omit the key entirely (golden safety)...
        let plain = sample_report();
        assert!(plain.to_json().get("series").is_none());
        assert_eq!(RunReport::parse(&plain.to_json().dump()).unwrap(), plain);
        // ...and reports that carry series round-trip them exactly.
        let tel = Telemetry::new(
            TelemetryConfig { window_ticks: 1, capacity: 4, drift_threshold: 3.0 },
            "engine",
            "ops",
        );
        let metrics = Metrics::new();
        tel.tick(0, &metrics);
        metrics.incr("db.queries");
        tel.record_audit("cycle.materialized-view", 10.0, 12.0);
        tel.tick(1, &metrics);
        let mut report = sample_report();
        report.series.push(tel.series());
        let back = RunReport::parse(&report.to_json().pretty()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.series[0].windows.len(), 1);
    }

    #[test]
    fn event_overflow_surfaces_as_dropped_counter() {
        let params = SystemParams::test_small();
        let cost = Cost::new();
        let metrics = Metrics::new();
        let events = EventLog::new();
        for i in 0..crate::events::EVENT_CAPACITY as u64 + 3 {
            events.emit(EventKind::QueryStart, "q", OpCounts { ios: i, ..OpCounts::default() });
        }
        let report = RunReport::capture("overflow", &params, &cost, &metrics, &events);
        assert_eq!(report.metrics.counter("events.dropped"), 3);
        // Without overflow the counter never appears.
        let quiet = sample_report();
        assert!(!quiet.metrics.counters.iter().any(|(k, _)| k == "events.dropped"));
    }

    #[test]
    fn rejects_schema_drift() {
        let mut json = sample_report().to_json();
        if let Json::Obj(members) = &mut json {
            members.retain(|(k, _)| k != "spans");
        }
        assert!(RunReport::from_json(&json).is_err());
    }

    fn shard_report(label: &str, ios: u64) -> RunReport {
        let params = SystemParams::test_small();
        let cost = Cost::new();
        let metrics = Metrics::new();
        let events = EventLog::new();
        {
            let _q = cost.section("mv.scan_view");
            cost.io(ios);
        }
        metrics.counter_add("disk.reads", ios);
        metrics.observe("query.us", ios);
        events.emit(EventKind::QueryStart, "strategy=mv", OpCounts::default());
        events.emit(EventKind::QueryEnd, "strategy=mv", cost.total());
        RunReport::capture(label, &params, &cost, &metrics, &events)
    }

    #[test]
    fn rollup_sums_shards_and_prefixes_events() {
        let params = SystemParams::test_small();
        let shards = vec![shard_report("shard0", 3), shard_report("shard1", 5)];
        let sharded = ShardedRunReport::rollup_of("serve", &params, shards);
        assert_eq!(sharded.rollup.totals.ios, 8);
        assert_eq!(sharded.rollup.metrics.counter("disk.reads"), 8);
        assert_eq!(sharded.rollup.metrics.histogram("query.us").unwrap().count, 2);
        // Spans merged by path: one scan_view node holding both shards' ops.
        let scans: Vec<_> =
            sharded.rollup.spans.iter().filter(|s| s.name == "mv.scan_view").collect();
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].cum_ops.ios, 8);
        assert_eq!(scans[0].invocations, 2);
        // Events interleave round-robin by per-shard seq, re-sequenced,
        // with the owning shard named in the detail.
        let details: Vec<&str> = sharded.rollup.events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(
            details,
            [
                "shard0: strategy=mv",
                "shard1: strategy=mv",
                "shard0: strategy=mv",
                "shard1: strategy=mv"
            ]
        );
        let seqs: Vec<u64> = sharded.rollup.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3]);
        // Per-shard reports are preserved untouched.
        assert_eq!(sharded.shards[1].totals.ios, 5);
        assert_eq!(sharded.shards[1].events[0].detail, "strategy=mv");
    }

    #[test]
    fn sharded_report_json_round_trip() {
        let params = SystemParams::test_small();
        let sharded = ShardedRunReport::rollup_of(
            "serve",
            &params,
            vec![shard_report("shard0", 2), shard_report("shard1", 4)],
        );
        let text = sharded.to_json().pretty();
        let back = ShardedRunReport::parse(&text).unwrap();
        assert_eq!(back, sharded);
        for key in ["name", "shards", "rollup"] {
            assert!(sharded.to_json().get(key).is_some(), "missing top-level key {key:?}");
        }
        // Dropping the rollup is schema drift.
        let mut json = sharded.to_json();
        if let Json::Obj(members) = &mut json {
            members.retain(|(k, _)| k != "rollup");
        }
        assert!(ShardedRunReport::from_json(&json).is_err());
    }
}
