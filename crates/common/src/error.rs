//! Workspace-wide error type.
//!
//! The task's dependency policy excludes `thiserror`, so this is a plain
//! hand-rolled enum. Variants are deliberately coarse: the simulator is
//! deterministic, so most of these indicate a programming error rather than
//! an environmental failure, and carry enough context to debug a test.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage, index and execution layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A page id referenced a file or page that does not exist.
    PageNotFound {
        /// File the page was looked up in.
        file: u32,
        /// Page number within the file.
        page: u32,
    },
    /// A record did not fit in a page, or a slot id was invalid.
    PageOverflow {
        /// Bytes that were requested.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A slot id did not exist or was already deleted.
    SlotNotFound {
        /// The offending slot index.
        slot: u16,
    },
    /// The buffer pool had no evictable frame (everything pinned).
    BufferPoolExhausted,
    /// A serialized record was malformed.
    Corrupt(String),
    /// A key was not found where it was required to exist.
    KeyNotFound(u64),
    /// A configuration is infeasible (e.g. memory budget too small for an
    /// operator's fixed buffers).
    Infeasible(String),
    /// Catch-all for invariant violations.
    Invariant(String),
    /// A deliberately injected device fault (test harness; see
    /// `SimDisk::inject_fault`).
    Faulted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageNotFound { file, page } => {
                write!(f, "page not found: file {file}, page {page}")
            }
            Error::PageOverflow { needed, available } => {
                write!(f, "page overflow: needed {needed} bytes, {available} available")
            }
            Error::SlotNotFound { slot } => write!(f, "slot {slot} not found"),
            Error::BufferPoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::Infeasible(msg) => write!(f, "infeasible configuration: {msg}"),
            Error::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            Error::Faulted => write!(f, "injected device fault"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PageNotFound { file: 3, page: 9 };
        assert_eq!(e.to_string(), "page not found: file 3, page 9");
        let e = Error::PageOverflow { needed: 5000, available: 12 };
        assert!(e.to_string().contains("5000"));
        let e = Error::Infeasible("|M| too small".into());
        assert!(e.to_string().contains("|M| too small"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::SlotNotFound { slot: 1 },
            Error::SlotNotFound { slot: 1 }
        );
        assert_ne!(Error::BufferPoolExhausted, Error::KeyNotFound(0));
    }
}
