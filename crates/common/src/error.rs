//! Workspace-wide error type.
//!
//! The task's dependency policy excludes `thiserror`, so this is a plain
//! hand-rolled enum. Variants are deliberately coarse: the simulator is
//! deterministic, so most of these indicate a programming error rather than
//! an environmental failure, and carry enough context to debug a test.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Which device operation an injected fault hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A charged page read.
    Read,
    /// A charged page write.
    Write,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Read => write!(f, "read"),
            FaultOp::Write => write!(f, "write"),
        }
    }
}

/// How an injected device fault behaves, which determines the correct
/// response:
///
/// * [`FaultKind::Transient`] — the device hiccupped once; *retrying the
///   same operation* is expected to succeed.
/// * [`FaultKind::TornWrite`] — only a prefix of the page reached the
///   platter; the page stays unreadable until something rewrites it, so the
///   owning structure must be *rebuilt* (or the page rewritten from a
///   redundant source).
/// * [`FaultKind::Poisoned`] — the page is persistently unreadable (media
///   error) until rewritten; retries cannot help, rebuild is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One-off failure; retry is expected to succeed.
    Transient,
    /// Partial write persisted; page detectably damaged until rewritten.
    TornWrite,
    /// Media error; reads keep failing until the page is rewritten.
    Poisoned,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::TornWrite => write!(f, "torn-write"),
            FaultKind::Poisoned => write!(f, "poisoned"),
        }
    }
}

/// Errors produced by the storage, index and execution layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A page id referenced a file or page that does not exist.
    PageNotFound {
        /// File the page was looked up in.
        file: u32,
        /// Page number within the file.
        page: u32,
    },
    /// A record did not fit in a page, or a slot id was invalid.
    PageOverflow {
        /// Bytes that were requested.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A slot id did not exist or was already deleted.
    SlotNotFound {
        /// The offending slot index.
        slot: u16,
    },
    /// The buffer pool had no evictable frame (everything pinned).
    BufferPoolExhausted,
    /// A serialized record was malformed.
    Corrupt(String),
    /// A key was not found where it was required to exist.
    KeyNotFound(u64),
    /// A configuration is infeasible (e.g. memory budget too small for an
    /// operator's fixed buffers).
    Infeasible(String),
    /// Catch-all for invariant violations.
    Invariant(String),
    /// A deliberately injected device fault (test harness; see
    /// `SimDisk::inject_fault`). Legacy one-shot form: always surfaced to
    /// the caller, never retried or recovered from — error-path tests rely
    /// on seeing exactly this value.
    Faulted,
    /// A typed device fault from the fault-injection plan (see
    /// `SimDisk::install_fault_plan`). Unlike [`Error::Faulted`], these
    /// carry enough classification for the execution layer to react:
    /// transient faults are retried, persistent ones trigger a rebuild of
    /// the damaged cached structure.
    DeviceFault {
        /// The operation that failed.
        op: FaultOp,
        /// Behavioural class of the fault.
        kind: FaultKind,
        /// File the faulted page belongs to.
        file: u32,
        /// Page number within the file.
        page: u32,
    },
    /// A *real* operating-system I/O failure from the file storage
    /// backend (as opposed to the simulated [`Error::DeviceFault`]).
    /// `std::io::Error` is neither `Clone` nor `PartialEq`, so the kind
    /// and message are captured as strings at the mapping boundary —
    /// every file-backend syscall goes through [`Error::io`], which is
    /// how "never panics" is enforced for the durable path.
    Io {
        /// What the backend was doing, e.g. `"read f3 page 7"`.
        op: String,
        /// The `std::io::ErrorKind` (or a backend-specific class such as
        /// `"short read"`), rendered for comparison and display.
        kind: String,
    },
}

impl Error {
    /// Map a `std::io::Error` into the workspace error type, naming the
    /// operation that failed. The one funnel every file-backend syscall
    /// result passes through: backends return `Err(Error::Io { .. })`
    /// instead of panicking, whatever the OS reports.
    pub fn io(op: impl Into<String>, e: &std::io::Error) -> Error {
        Error::Io { op: op.into(), kind: format!("{:?}", e.kind()) }
    }

    /// An I/O-class error with a backend-specific kind (e.g. a read that
    /// returned fewer bytes than a page without an OS error).
    pub fn io_kind(op: impl Into<String>, kind: impl Into<String>) -> Error {
        Error::Io { op: op.into(), kind: kind.into() }
    }

    /// True for typed faults from the fault-injection plan — the class of
    /// errors the execution layer recovers from (retry or rebuild). The
    /// legacy [`Error::Faulted`] is deliberately excluded: its contract is
    /// to surface unchanged.
    pub fn is_device_fault(&self) -> bool {
        matches!(self, Error::DeviceFault { .. })
    }

    /// True when retrying the same operation may succeed (transient device
    /// faults). Torn/poisoned pages stay damaged until rewritten, so they
    /// are not retryable — the owning structure must rebuild instead.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::DeviceFault { kind: FaultKind::Transient, .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageNotFound { file, page } => {
                write!(f, "page not found: file {file}, page {page}")
            }
            Error::PageOverflow { needed, available } => {
                write!(f, "page overflow: needed {needed} bytes, {available} available")
            }
            Error::SlotNotFound { slot } => write!(f, "slot {slot} not found"),
            Error::BufferPoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::Infeasible(msg) => write!(f, "infeasible configuration: {msg}"),
            Error::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            Error::Faulted => write!(f, "injected device fault"),
            Error::DeviceFault { op, kind, file, page } => {
                write!(f, "{kind} device fault on {op} of file {file}, page {page}")
            }
            Error::Io { op, kind } => write!(f, "io error ({kind}) during {op}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PageNotFound { file: 3, page: 9 };
        assert_eq!(e.to_string(), "page not found: file 3, page 9");
        let e = Error::PageOverflow { needed: 5000, available: 12 };
        assert!(e.to_string().contains("5000"));
        let e = Error::Infeasible("|M| too small".into());
        assert!(e.to_string().contains("|M| too small"));
    }

    #[test]
    fn fault_taxonomy_classifies() {
        let transient =
            Error::DeviceFault { op: FaultOp::Read, kind: FaultKind::Transient, file: 1, page: 2 };
        let poisoned =
            Error::DeviceFault { op: FaultOp::Read, kind: FaultKind::Poisoned, file: 1, page: 2 };
        let torn =
            Error::DeviceFault { op: FaultOp::Write, kind: FaultKind::TornWrite, file: 3, page: 0 };
        assert!(transient.is_device_fault() && transient.is_retryable());
        assert!(poisoned.is_device_fault() && !poisoned.is_retryable());
        assert!(torn.is_device_fault() && !torn.is_retryable());
        // The legacy one-shot fault is surfaced, never recovered from.
        assert!(!Error::Faulted.is_device_fault());
        assert!(!Error::Faulted.is_retryable());
        assert_eq!(transient.to_string(), "transient device fault on read of file 1, page 2");
        assert!(torn.to_string().contains("torn-write"));
    }

    #[test]
    fn io_mapping_captures_operation_and_kind() {
        let denied = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        let e = Error::io("open wal.log", &denied);
        assert_eq!(e, Error::Io { op: "open wal.log".into(), kind: "PermissionDenied".into() });
        assert_eq!(e.to_string(), "io error (PermissionDenied) during open wal.log");
        assert!(!e.is_device_fault() && !e.is_retryable());

        let short = Error::io_kind("read f3 page 7", "short read");
        assert!(short.to_string().contains("short read"), "{short}");
        assert!(short.to_string().contains("f3 page 7"), "{short}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::SlotNotFound { slot: 1 }, Error::SlotNotFound { slot: 1 });
        assert_ne!(Error::BufferPoolExhausted, Error::KeyNotFound(0));
    }
}
