//! Structured engine events in a bounded ring buffer.
//!
//! [`EventLog`] is a shared handle (the usual `Rc<RefCell<..>>` idiom)
//! holding the most recent [`EVENT_CAPACITY`] events. Each event is stamped
//! with a monotone sequence number and the ledger's [`OpCounts`] total at
//! emission time — the engine has no wall clock, so "when" is expressed in
//! primitive ops and rendered to simulated time with whatever
//! [`crate::SystemParams`] the report is priced under.

use crate::cost::OpCounts;
use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Maximum number of events the ring retains (oldest evicted first).
pub const EVENT_CAPACITY: usize = 1024;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A `Database::query` began.
    QueryStart,
    /// A `Database::query` finished.
    QueryEnd,
    /// A scheduled device fault fired.
    FaultFired,
    /// A strategy entered its recovery/retry path.
    RecoveryTriggered,
    /// The adaptive planner changed strategy.
    StrategySwitch,
    /// One step of an incremental strategy migration advanced (build
    /// chunk processed, pending log drained, rollback on fault, ...).
    MigrationStep,
    /// A telemetry window's predicted-vs-actual cost error exceeded the
    /// configured drift threshold (see `telemetry::DriftAlert`).
    CostDrift,
}

impl EventKind {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::QueryStart => "query_start",
            EventKind::QueryEnd => "query_end",
            EventKind::FaultFired => "fault_fired",
            EventKind::RecoveryTriggered => "recovery_triggered",
            EventKind::StrategySwitch => "strategy_switch",
            EventKind::MigrationStep => "migration_step",
            EventKind::CostDrift => "cost_drift",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn from_wire(name: &str) -> Option<EventKind> {
        Some(match name {
            "query_start" => EventKind::QueryStart,
            "query_end" => EventKind::QueryEnd,
            "fault_fired" => EventKind::FaultFired,
            "recovery_triggered" => EventKind::RecoveryTriggered,
            "strategy_switch" => EventKind::StrategySwitch,
            "migration_step" => EventKind::MigrationStep,
            "cost_drift" => EventKind::CostDrift,
            _ => return None,
        })
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone emission index (survives ring eviction: the first retained
    /// event of a long run has `seq > 0`).
    pub seq: u64,
    /// Event class.
    pub kind: EventKind,
    /// Free-form context (`"strategy=mv"`, `"read f2 page 17"`, ...).
    pub detail: String,
    /// Ledger total at emission; price with `at.time_us(&params)`.
    pub at: OpCounts,
}

impl Event {
    /// Serialize for embedding in a run report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("seq", self.seq)
            .set("kind", self.kind.as_str())
            .set("detail", self.detail.as_str())
            .set(
                "at",
                Json::obj()
                    .set("ios", self.at.ios)
                    .set("comps", self.at.comps)
                    .set("hashes", self.at.hashes)
                    .set("moves", self.at.moves),
            )
    }

    /// Inverse of [`Event::to_json`].
    pub fn from_json(json: &Json) -> Result<Event, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .and_then(EventKind::from_wire)
            .ok_or_else(|| "event: bad kind".to_string())?;
        let at = json.get("at").ok_or_else(|| "event: missing at".to_string())?;
        let op = |f: &str| {
            at.get(f).and_then(Json::as_u64).ok_or_else(|| format!("event: at.{f} not a u64"))
        };
        Ok(Event {
            seq: json
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| "event: missing seq".to_string())?,
            kind,
            detail: json
                .get("detail")
                .and_then(Json::as_str)
                .ok_or_else(|| "event: missing detail".to_string())?
                .to_string(),
            at: OpCounts {
                ios: op("ios")?,
                comps: op("comps")?,
                hashes: op("hashes")?,
                moves: op("moves")?,
            },
        })
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Shared handle to the event ring. Clones alias the same buffer.
#[derive(Debug, Clone, Default)]
pub struct EventLog(Rc<RefCell<Ring>>);

impl EventLog {
    /// A fresh, empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Append an event stamped `at` the given ledger total.
    pub fn emit(&self, kind: EventKind, detail: impl Into<String>, at: OpCounts) {
        let mut ring = self.0.borrow_mut();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == EVENT_CAPACITY {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(Event { seq, kind, detail: detail.into(), at });
    }

    /// Events evicted from the ring to make room (overflow is no longer
    /// silent: run reports surface this as the `events.dropped` counter).
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.0.borrow().events.iter().cloned().collect()
    }

    /// Total events ever emitted (including any evicted from the ring).
    pub fn emitted(&self) -> u64 {
        self.0.borrow().next_seq
    }

    /// Number of retained events of one kind.
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.0.borrow().events.iter().filter(|e| e.kind == kind).count()
    }

    /// Drop all retained events and reset the sequence counter.
    pub fn reset(&self) {
        let mut ring = self.0.borrow_mut();
        ring.events.clear();
        ring.next_seq = 0;
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ios: u64) -> OpCounts {
        OpCounts { ios, ..OpCounts::default() }
    }

    #[test]
    fn emits_in_order_with_monotone_seq() {
        let log = EventLog::new();
        let alias = log.clone();
        log.emit(EventKind::QueryStart, "strategy=mv", at(0));
        alias.emit(EventKind::QueryEnd, "strategy=mv", at(10));
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].kind, EventKind::QueryStart);
        assert_eq!(events[1].at.ios, 10);
        assert_eq!(log.count_of(EventKind::QueryEnd), 1);
    }

    #[test]
    fn ring_evicts_oldest_but_seq_keeps_counting() {
        let log = EventLog::new();
        for i in 0..(EVENT_CAPACITY as u64 + 5) {
            log.emit(EventKind::FaultFired, format!("fault {i}"), at(i));
        }
        let events = log.events();
        assert_eq!(events.len(), EVENT_CAPACITY);
        assert_eq!(events.first().unwrap().seq, 5);
        assert_eq!(events.last().unwrap().seq, EVENT_CAPACITY as u64 + 4);
        assert_eq!(log.emitted(), EVENT_CAPACITY as u64 + 5);
        assert_eq!(log.dropped(), 5, "overflow is counted, not silent");
    }

    #[test]
    fn dropped_is_zero_until_overflow() {
        let log = EventLog::new();
        for i in 0..EVENT_CAPACITY as u64 {
            log.emit(EventKind::QueryStart, "q", at(i));
        }
        assert_eq!(log.dropped(), 0, "a full-but-not-overflowed ring drops nothing");
        log.emit(EventKind::QueryEnd, "q", at(0));
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn event_json_round_trip() {
        let event = Event {
            seq: 17,
            kind: EventKind::StrategySwitch,
            detail: "mv -> hh at epoch 3".to_string(),
            at: OpCounts { ios: 1, comps: 2, hashes: 3, moves: 4 },
        };
        assert_eq!(Event::from_json(&event.to_json()).unwrap(), event);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::QueryStart,
            EventKind::QueryEnd,
            EventKind::FaultFired,
            EventKind::RecoveryTriggered,
            EventKind::StrategySwitch,
            EventKind::MigrationStep,
            EventKind::CostDrift,
        ] {
            assert_eq!(EventKind::from_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::from_wire("nope"), None);
    }

    #[test]
    fn reset_clears_and_rewinds() {
        let log = EventLog::new();
        for i in 0..(EVENT_CAPACITY as u64 + 1) {
            log.emit(EventKind::QueryStart, "x", at(i));
        }
        log.reset();
        assert!(log.events().is_empty());
        assert_eq!(log.dropped(), 0);
        log.emit(EventKind::QueryStart, "y", at(0));
        assert_eq!(log.events()[0].seq, 0);
    }
}
