//! Simulated-cost accounting.
//!
//! The paper prices every algorithm as a weighted sum of four primitive
//! operations: random page I/Os, key comparisons, key hashes, and in-memory
//! tuple moves (Table 6). The execution engine performs those primitives for
//! real and charges each one into a shared [`Cost`] ledger; the simulated
//! elapsed time of a run is then `ios·IO + comps·comp + hashes·hash +
//! moves·move` under a given [`SystemParams`].
//!
//! Charges are attributed to named *sections* (e.g. `"mv.read_view"`),
//! which is how the engine reproduces the cost breakdown of the paper's
//! Figure 5 (non-update file processing vs. update/internal processing).
//! Sections nest into a real **span tree**: each [`Cost::section`] guard
//! opens a span under the currently-open one, and a charge is attributed to
//! *every* enclosing span (cumulative) as well as tracked separately for the
//! innermost one (self). [`Cost::span_tree`] exposes the tree;
//! [`Cost::render_profile`] prints it as a flamegraph-style indented
//! profile; the flat [`Cost::sections`] view aggregates cumulative counts by
//! section name on top of the tree.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::params::SystemParams;

/// Counts of the four primitive operations of Table 6.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Random page I/O operations (reads and writes are priced identically).
    pub ios: u64,
    /// In-memory key comparisons.
    pub comps: u64,
    /// Key hash computations.
    pub hashes: u64,
    /// In-memory tuple moves (any tuple size, per the paper).
    pub moves: u64,
}

impl OpCounts {
    /// Simulated elapsed time in microseconds under `params`.
    pub fn time_us(&self, params: &SystemParams) -> f64 {
        self.ios as f64 * params.io_us
            + self.comps as f64 * params.comp_us
            + self.hashes as f64 * params.hash_us
            + self.moves as f64 * params.move_us
    }

    /// Simulated elapsed time in seconds under `params`.
    pub fn time_secs(&self, params: &SystemParams) -> f64 {
        self.time_us(params) / 1e6
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &OpCounts) {
        self.ios += other.ios;
        self.comps += other.comps;
        self.hashes += other.hashes;
        self.moves += other.moves;
    }

    /// Component-wise difference (saturating, for "since snapshot" deltas).
    pub fn delta_since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            ios: self.ios.saturating_sub(earlier.ios),
            comps: self.comps.saturating_sub(earlier.comps),
            hashes: self.hashes.saturating_sub(earlier.hashes),
            moves: self.moves.saturating_sub(earlier.moves),
        }
    }

    /// True when no operation has been charged.
    pub fn is_zero(&self) -> bool {
        *self == OpCounts::default()
    }

    /// The ledger tick: total primitive operations charged, across all four
    /// kinds. The engine has no wall clock, so this is its monotone "when"
    /// — switch logs and event timestamps use it to order observations
    /// within a run.
    pub fn ticks(&self) -> u64 {
        self.ios + self.comps + self.hashes + self.moves
    }
}

/// One node of the span tree, in the serializable pre-order form returned by
/// [`Cost::span_tree`].
///
/// Re-entering a section under the same parent merges into one node
/// (`invocations` counts the entries); the same section name under two
/// different parents yields two distinct nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Section name as passed to [`Cost::section`] (e.g. `"mv.read_view"`).
    pub name: String,
    /// Slash-joined ancestor path including the span itself
    /// (e.g. `"mv.recover/mv.scan_view"`). Root spans have `path == name`.
    pub path: String,
    /// Nesting depth (root spans are 0).
    pub depth: usize,
    /// Ops charged while this span was the *innermost* open span.
    pub self_ops: OpCounts,
    /// Ops charged while this span was open at all (self + descendants).
    pub cum_ops: OpCounts,
    /// How many times the span was entered.
    pub invocations: u64,
    /// Global enter/exit sequence number of the first entry.
    pub first_enter: u64,
    /// Global enter/exit sequence number of the last exit
    /// (equals `first_enter` while the span is still open).
    pub last_exit: u64,
    /// Ledger grand total when the span was first entered; price with
    /// `start_total.time_us(&params)` for a simulated start timestamp.
    pub start_total: OpCounts,
    /// Ledger grand total at the last exit (start total while still open).
    pub end_total: OpCounts,
}

#[derive(Debug)]
struct SpanNode {
    name: String,
    path: String,
    parent: Option<usize>,
    depth: usize,
    self_ops: OpCounts,
    cum_ops: OpCounts,
    invocations: u64,
    first_enter: u64,
    last_exit: u64,
    start_total: OpCounts,
    end_total: OpCounts,
    children: Vec<usize>,
}

/// The underlying ledger. Use through the cheaply-clonable [`Cost`] handle.
#[derive(Debug, Default)]
pub struct CostTracker {
    total: OpCounts,
    /// Arena of span-tree nodes; `roots`/`children` index into it.
    spans: Vec<SpanNode>,
    roots: Vec<usize>,
    /// Indices of currently-open spans, outermost first.
    open: Vec<usize>,
    /// Monotone enter/exit counter stamping span order.
    seq: u64,
}

impl CostTracker {
    fn charge(&mut self, delta: OpCounts) {
        self.total.add(&delta);
        // Cumulative attribution: every enclosing span sees the charge, so
        // an outer phase's count includes the phases nested inside it.
        for &idx in &self.open {
            self.spans[idx].cum_ops.add(&delta);
        }
        if let Some(&idx) = self.open.last() {
            self.spans[idx].self_ops.add(&delta);
        }
    }

    fn enter(&mut self, name: &str) {
        let parent = self.open.last().copied();
        let siblings = match parent {
            Some(p) => &self.spans[p].children,
            None => &self.roots,
        };
        let existing = siblings.iter().copied().find(|&i| self.spans[i].name == name);
        let seq = self.seq;
        self.seq += 1;
        let idx = match existing {
            Some(idx) => {
                self.spans[idx].invocations += 1;
                idx
            }
            None => {
                let idx = self.spans.len();
                let (path, depth) = match parent {
                    Some(p) => {
                        (format!("{}/{}", self.spans[p].path, name), self.spans[p].depth + 1)
                    }
                    None => (name.to_string(), 0),
                };
                self.spans.push(SpanNode {
                    name: name.to_string(),
                    path,
                    parent,
                    depth,
                    self_ops: OpCounts::default(),
                    cum_ops: OpCounts::default(),
                    invocations: 1,
                    first_enter: seq,
                    last_exit: seq,
                    start_total: self.total,
                    end_total: self.total,
                    children: Vec::new(),
                });
                match parent {
                    Some(p) => self.spans[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        self.open.push(idx);
    }

    fn exit(&mut self) {
        // `open` can be empty if the ledger was reset under a live guard.
        if let Some(idx) = self.open.pop() {
            let seq = self.seq;
            self.seq += 1;
            self.spans[idx].last_exit = seq;
            self.spans[idx].end_total = self.total;
        }
    }

    /// Flat per-name view: cumulative counts aggregated across every node
    /// sharing a section name (the pre-span-tree `sections()` semantics,
    /// upgraded from innermost-only to cumulative attribution).
    fn flat_sections(&self) -> BTreeMap<String, OpCounts> {
        let mut flat: BTreeMap<String, OpCounts> = BTreeMap::new();
        for span in &self.spans {
            flat.entry(span.name.clone()).or_default().add(&span.cum_ops);
        }
        flat
    }
}

/// Shared, cheaply-clonable handle to a [`CostTracker`].
///
/// The whole simulator is single-threaded by design (determinism is what
/// makes the engine directly comparable to the analytical model), so an
/// `Rc<RefCell<..>>` suffices.
#[derive(Debug, Clone, Default)]
pub struct Cost(Rc<RefCell<CostTracker>>);

impl Cost {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` random page I/Os.
    #[inline]
    pub fn io(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { ios: n, ..OpCounts::default() });
    }

    /// Charge `n` key comparisons.
    #[inline]
    pub fn comp(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { comps: n, ..OpCounts::default() });
    }

    /// Charge `n` key hash computations.
    // Named after the paper's `hash` primitive; not the `Hash` trait.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn hash(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { hashes: n, ..OpCounts::default() });
    }

    /// Charge `n` tuple moves.
    #[inline]
    pub fn mov(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { moves: n, ..OpCounts::default() });
    }

    /// Grand-total counts so far.
    pub fn total(&self) -> OpCounts {
        self.0.borrow().total
    }

    /// Cumulative counts attributed to a named section — everything charged
    /// while a span of that name was open, including nested spans (zero if
    /// the section never ran). Aggregated across all tree positions sharing
    /// the name.
    pub fn section_counts(&self, name: &str) -> OpCounts {
        self.0.borrow().flat_sections().get(name).copied().unwrap_or_default()
    }

    /// All section names seen so far with their cumulative counts, sorted by
    /// name. Nested sections also appear in their enclosing sections'
    /// counts, so summing this list over-counts; use [`Cost::total`] for the
    /// grand total.
    pub fn sections(&self) -> Vec<(String, OpCounts)> {
        self.0.borrow().flat_sections().into_iter().collect()
    }

    /// Enter a named section; the span stays open (and keeps absorbing
    /// charges, its own and nested spans') until the returned guard drops.
    pub fn section(&self, name: &str) -> SectionGuard {
        self.0.borrow_mut().enter(name);
        SectionGuard { cost: self.clone() }
    }

    /// The span tree in pre-order (parents before children, siblings in
    /// first-entered order).
    pub fn span_tree(&self) -> Vec<SpanRecord> {
        let tracker = self.0.borrow();
        let mut out = Vec::with_capacity(tracker.spans.len());
        let mut stack: Vec<usize> = tracker.roots.iter().rev().copied().collect();
        while let Some(idx) = stack.pop() {
            let span = &tracker.spans[idx];
            out.push(SpanRecord {
                name: span.name.clone(),
                path: span.path.clone(),
                depth: span.depth,
                self_ops: span.self_ops,
                cum_ops: span.cum_ops,
                invocations: span.invocations,
                first_enter: span.first_enter,
                last_exit: span.last_exit,
                start_total: span.start_total,
                end_total: span.end_total,
            });
            stack.extend(span.children.iter().rev().copied());
        }
        out
    }

    /// Flamegraph-style indented profile of the span tree under `params`.
    ///
    /// The root line is the ledger grand total (exactly [`Cost::total`]);
    /// each level lists its spans sorted by cumulative simulated time
    /// (descending) with their share of the grand total, invocation count,
    /// and self time; time not covered by any child span shows up as an
    /// `(untracked)` line.
    pub fn render_profile(&self, params: &SystemParams) -> String {
        let tracker = self.0.borrow();
        let total = tracker.total;
        let total_us = total.time_us(params);
        let pct = |ops: &OpCounts| {
            if total_us > 0.0 {
                100.0 * ops.time_us(params) / total_us
            } else {
                0.0
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "total {:>12.6}s 100.0%  ios={} comps={} hashes={} moves={}",
            total.time_secs(params),
            total.ios,
            total.comps,
            total.hashes,
            total.moves
        );
        // (level indent, children indices, ops of the parent level)
        let mut frames: Vec<(usize, Vec<usize>, OpCounts)> =
            vec![(1, tracker.roots.clone(), total)];
        // Depth-first with explicit frames so each level can be sorted by
        // simulated time and closed with its untracked remainder.
        while let Some((indent, mut children, parent_ops)) = frames.pop() {
            if children.is_empty() {
                continue;
            }
            // Pop order: emit the cheapest last, so sort ascending and pop.
            children.sort_by(|&a, &b| {
                let (ta, tb) = (
                    tracker.spans[a].cum_ops.time_us(params),
                    tracker.spans[b].cum_ops.time_us(params),
                );
                ta.partial_cmp(&tb)
                    .unwrap()
                    .then(tracker.spans[b].first_enter.cmp(&tracker.spans[a].first_enter))
            });
            let idx = children.pop().unwrap();
            let span = &tracker.spans[idx];
            let _ = writeln!(
                out,
                "{}{} {:>12.6}s {:>5.1}%  x{}  self {:.6}s",
                "  ".repeat(indent),
                span.name,
                span.cum_ops.time_secs(params),
                pct(&span.cum_ops),
                span.invocations,
                span.self_ops.time_secs(params),
            );
            if children.is_empty() {
                // Level finished: account for time the parent spent outside
                // any child span.
                let mut covered = OpCounts::default();
                let siblings: &[usize] = match span.parent {
                    Some(p) => &tracker.spans[p].children,
                    None => &tracker.roots,
                };
                for &s in siblings {
                    covered.add(&tracker.spans[s].cum_ops);
                }
                let untracked = parent_ops.delta_since(&covered);
                if !untracked.is_zero() {
                    let _ = writeln!(
                        out,
                        "{}(untracked) {:>6.6}s {:>5.1}%",
                        "  ".repeat(indent),
                        untracked.time_secs(params),
                        pct(&untracked),
                    );
                }
            } else {
                frames.push((indent, children, parent_ops));
            }
            if !span.children.is_empty() {
                frames.push((indent + 1, span.children.clone(), span.cum_ops));
            }
        }
        out
    }

    /// Simulated elapsed seconds of everything charged so far.
    pub fn elapsed_secs(&self, params: &SystemParams) -> f64 {
        self.total().time_secs(params)
    }

    /// Reset the ledger (totals, the span tree, and any open spans).
    pub fn reset(&self) {
        let mut t = self.0.borrow_mut();
        t.total = OpCounts::default();
        t.spans.clear();
        t.roots.clear();
        t.open.clear();
        t.seq = 0;
    }
}

/// RAII guard returned by [`Cost::section`]; closes the span on drop.
#[derive(Debug)]
pub struct SectionGuard {
    cost: Cost,
}

impl Drop for SectionGuard {
    fn drop(&mut self) {
        self.cost.0.borrow_mut().exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let c = Cost::new();
        c.io(3);
        c.comp(10);
        c.hash(2);
        c.mov(7);
        c.io(1);
        let t = c.total();
        assert_eq!(t, OpCounts { ios: 4, comps: 10, hashes: 2, moves: 7 });
    }

    #[test]
    fn time_matches_table7_weights() {
        let p = SystemParams::paper_defaults();
        let t = OpCounts { ios: 2, comps: 4, hashes: 3, moves: 5 };
        // 2*25000 + 4*3 + 3*9 + 5*20 = 50000 + 12 + 27 + 100 = 50139 µs.
        assert!((t.time_us(&p) - 50_139.0).abs() < 1e-9);
        assert!((t.time_secs(&p) - 0.050_139).abs() < 1e-12);
    }

    // Formerly `sections_attribute_to_innermost`: a charge now lands in
    // every enclosing section, so outer phases include their nested spans.
    #[test]
    fn sections_attribute_cumulatively() {
        let c = Cost::new();
        {
            let _outer = c.section("outer");
            c.io(1);
            {
                let _inner = c.section("inner");
                c.io(10);
            }
            c.io(100);
        }
        c.io(1000); // outside any section
        assert_eq!(c.section_counts("outer").ios, 111);
        assert_eq!(c.section_counts("inner").ios, 10);
        assert_eq!(c.total().ios, 1111);
    }

    #[test]
    fn span_tree_tracks_self_vs_cumulative() {
        let c = Cost::new();
        {
            let _outer = c.section("outer");
            c.io(1);
            {
                let _inner = c.section("inner");
                c.io(10);
            }
            c.io(100);
        }
        let tree = c.span_tree();
        assert_eq!(tree.len(), 2);
        let outer = &tree[0];
        let inner = &tree[1];
        assert_eq!(outer.path, "outer");
        assert_eq!(inner.path, "outer/inner");
        assert_eq!((outer.depth, inner.depth), (0, 1));
        assert_eq!(outer.cum_ops.ios, 111);
        assert_eq!(outer.self_ops.ios, 101);
        assert_eq!(inner.cum_ops.ios, 10);
        assert_eq!(inner.self_ops.ios, 10);
        // Enter/exit order: outer enters first, exits last.
        assert!(outer.first_enter < inner.first_enter);
        assert!(inner.last_exit < outer.last_exit);
        // Simulated start/end: inner started after outer's first io.
        assert_eq!(inner.start_total.ios, 1);
        assert_eq!(inner.end_total.ios, 11);
        assert_eq!(outer.end_total.ios, 111);
    }

    #[test]
    fn reentrant_spans_merge_and_count_invocations() {
        let c = Cost::new();
        for _ in 0..3 {
            let _g = c.section("phase");
            c.comp(5);
            {
                let _h = c.section("phase.sub");
                c.comp(1);
            }
        }
        let tree = c.span_tree();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].invocations, 3);
        assert_eq!(tree[1].invocations, 3);
        assert_eq!(tree[0].cum_ops.comps, 18);
        assert_eq!(tree[0].self_ops.comps, 15);
        assert_eq!(c.section_counts("phase").comps, 18);
    }

    #[test]
    fn same_name_under_different_parents_gets_distinct_nodes() {
        let c = Cost::new();
        {
            let _a = c.section("a");
            let _s = c.section("scan");
            c.io(2);
        }
        {
            let _b = c.section("b");
            let _s = c.section("scan");
            c.io(3);
        }
        let tree = c.span_tree();
        let paths: Vec<&str> = tree.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["a", "a/scan", "b", "b/scan"]);
        // The flat view aggregates both positions.
        assert_eq!(c.section_counts("scan").ios, 5);
    }

    #[test]
    fn section_reentry_accumulates() {
        let c = Cost::new();
        {
            let _g = c.section("phase");
            c.comp(5);
        }
        {
            let _g = c.section("phase");
            c.comp(7);
        }
        assert_eq!(c.section_counts("phase").comps, 12);
        let names: Vec<String> = c.sections().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["phase".to_string()]);
    }

    #[test]
    fn clones_share_the_ledger() {
        let a = Cost::new();
        let b = a.clone();
        a.mov(4);
        b.mov(6);
        assert_eq!(a.total().moves, 10);
        assert_eq!(b.total().moves, 10);
    }

    #[test]
    fn reset_clears_everything() {
        let c = Cost::new();
        let _g = c.section("s");
        c.io(5);
        drop(_g);
        c.reset();
        assert!(c.total().is_zero());
        assert!(c.section_counts("s").is_zero());
        assert!(c.sections().is_empty());
        assert!(c.span_tree().is_empty());
    }

    #[test]
    fn profile_root_equals_total() {
        let c = Cost::new();
        {
            let _q = c.section("query");
            c.io(4);
            {
                let _s = c.section("scan");
                c.io(40);
            }
        }
        c.io(6); // untracked
        let p = SystemParams::paper_defaults();
        let profile = c.render_profile(&p);
        let first = profile.lines().next().unwrap();
        // Root line carries the exact grand total.
        assert!(first.starts_with("total"), "{first}");
        assert!(first.contains(&format!("{:.6}s", c.total().time_secs(&p))), "{first}");
        assert!(first.contains("ios=50"), "{first}");
        assert!(profile.contains("query"));
        assert!(profile.contains("scan"));
        assert!(profile.contains("(untracked)"));
    }

    #[test]
    fn delta_since_snapshots() {
        let c = Cost::new();
        c.io(5);
        let snap = c.total();
        c.io(3);
        c.comp(2);
        let d = c.total().delta_since(&snap);
        assert_eq!(d, OpCounts { ios: 3, comps: 2, hashes: 0, moves: 0 });
    }
}
