//! Simulated-cost accounting.
//!
//! The paper prices every algorithm as a weighted sum of four primitive
//! operations: random page I/Os, key comparisons, key hashes, and in-memory
//! tuple moves (Table 6). The execution engine performs those primitives for
//! real and charges each one into a shared [`Cost`] ledger; the simulated
//! elapsed time of a run is then `ios·IO + comps·comp + hashes·hash +
//! moves·move` under a given [`SystemParams`].
//!
//! Charges can be attributed to named *sections* (e.g. `"mv.read_view"`),
//! which is how the engine reproduces the cost breakdown of the paper's
//! Figure 5 (non-update file processing vs. update/internal processing).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::params::SystemParams;

/// Counts of the four primitive operations of Table 6.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Random page I/O operations (reads and writes are priced identically).
    pub ios: u64,
    /// In-memory key comparisons.
    pub comps: u64,
    /// Key hash computations.
    pub hashes: u64,
    /// In-memory tuple moves (any tuple size, per the paper).
    pub moves: u64,
}

impl OpCounts {
    /// Simulated elapsed time in microseconds under `params`.
    pub fn time_us(&self, params: &SystemParams) -> f64 {
        self.ios as f64 * params.io_us
            + self.comps as f64 * params.comp_us
            + self.hashes as f64 * params.hash_us
            + self.moves as f64 * params.move_us
    }

    /// Simulated elapsed time in seconds under `params`.
    pub fn time_secs(&self, params: &SystemParams) -> f64 {
        self.time_us(params) / 1e6
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &OpCounts) {
        self.ios += other.ios;
        self.comps += other.comps;
        self.hashes += other.hashes;
        self.moves += other.moves;
    }

    /// Component-wise difference (saturating, for "since snapshot" deltas).
    pub fn delta_since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            ios: self.ios.saturating_sub(earlier.ios),
            comps: self.comps.saturating_sub(earlier.comps),
            hashes: self.hashes.saturating_sub(earlier.hashes),
            moves: self.moves.saturating_sub(earlier.moves),
        }
    }

    /// True when no operation has been charged.
    pub fn is_zero(&self) -> bool {
        *self == OpCounts::default()
    }
}

/// The underlying ledger. Use through the cheaply-clonable [`Cost`] handle.
#[derive(Debug, Default)]
pub struct CostTracker {
    total: OpCounts,
    /// Per-section accumulators. A charge is attributed to the innermost
    /// active section (if any) in addition to the grand total.
    sections: BTreeMap<String, OpCounts>,
    stack: Vec<String>,
}

impl CostTracker {
    fn charge(&mut self, delta: OpCounts) {
        self.total.add(&delta);
        if let Some(name) = self.stack.last() {
            self.sections.entry(name.clone()).or_default().add(&delta);
        }
    }
}

/// Shared, cheaply-clonable handle to a [`CostTracker`].
///
/// The whole simulator is single-threaded by design (determinism is what
/// makes the engine directly comparable to the analytical model), so an
/// `Rc<RefCell<..>>` suffices.
#[derive(Debug, Clone, Default)]
pub struct Cost(Rc<RefCell<CostTracker>>);

impl Cost {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` random page I/Os.
    #[inline]
    pub fn io(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { ios: n, ..OpCounts::default() });
    }

    /// Charge `n` key comparisons.
    #[inline]
    pub fn comp(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { comps: n, ..OpCounts::default() });
    }

    /// Charge `n` key hash computations.
    // Named after the paper's `hash` primitive; not the `Hash` trait.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn hash(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { hashes: n, ..OpCounts::default() });
    }

    /// Charge `n` tuple moves.
    #[inline]
    pub fn mov(&self, n: u64) {
        self.0.borrow_mut().charge(OpCounts { moves: n, ..OpCounts::default() });
    }

    /// Grand-total counts so far.
    pub fn total(&self) -> OpCounts {
        self.0.borrow().total
    }

    /// Counts attributed to a named section (zero if the section never ran).
    pub fn section_counts(&self, name: &str) -> OpCounts {
        self.0.borrow().sections.get(name).copied().unwrap_or_default()
    }

    /// All section names seen so far, with their counts.
    pub fn sections(&self) -> Vec<(String, OpCounts)> {
        self.0.borrow().sections.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Enter a named section; charges are attributed to the innermost open
    /// section until the returned guard is dropped.
    pub fn section(&self, name: &str) -> SectionGuard {
        self.0.borrow_mut().stack.push(name.to_string());
        SectionGuard { cost: self.clone() }
    }

    /// Simulated elapsed seconds of everything charged so far.
    pub fn elapsed_secs(&self, params: &SystemParams) -> f64 {
        self.total().time_secs(params)
    }

    /// Reset the ledger (totals, sections, and the section stack).
    pub fn reset(&self) {
        let mut t = self.0.borrow_mut();
        t.total = OpCounts::default();
        t.sections.clear();
        t.stack.clear();
    }
}

/// RAII guard returned by [`Cost::section`]; closes the section on drop.
#[derive(Debug)]
pub struct SectionGuard {
    cost: Cost,
}

impl Drop for SectionGuard {
    fn drop(&mut self) {
        self.cost.0.borrow_mut().stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let c = Cost::new();
        c.io(3);
        c.comp(10);
        c.hash(2);
        c.mov(7);
        c.io(1);
        let t = c.total();
        assert_eq!(t, OpCounts { ios: 4, comps: 10, hashes: 2, moves: 7 });
    }

    #[test]
    fn time_matches_table7_weights() {
        let p = SystemParams::paper_defaults();
        let t = OpCounts { ios: 2, comps: 4, hashes: 3, moves: 5 };
        // 2*25000 + 4*3 + 3*9 + 5*20 = 50000 + 12 + 27 + 100 = 50139 µs.
        assert!((t.time_us(&p) - 50_139.0).abs() < 1e-9);
        assert!((t.time_secs(&p) - 0.050_139).abs() < 1e-12);
    }

    #[test]
    fn sections_attribute_to_innermost() {
        let c = Cost::new();
        {
            let _outer = c.section("outer");
            c.io(1);
            {
                let _inner = c.section("inner");
                c.io(10);
            }
            c.io(100);
        }
        c.io(1000); // outside any section
        assert_eq!(c.section_counts("outer").ios, 101);
        assert_eq!(c.section_counts("inner").ios, 10);
        assert_eq!(c.total().ios, 1111);
    }

    #[test]
    fn section_reentry_accumulates() {
        let c = Cost::new();
        {
            let _g = c.section("phase");
            c.comp(5);
        }
        {
            let _g = c.section("phase");
            c.comp(7);
        }
        assert_eq!(c.section_counts("phase").comps, 12);
        let names: Vec<String> = c.sections().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["phase".to_string()]);
    }

    #[test]
    fn clones_share_the_ledger() {
        let a = Cost::new();
        let b = a.clone();
        a.mov(4);
        b.mov(6);
        assert_eq!(a.total().moves, 10);
        assert_eq!(b.total().moves, 10);
    }

    #[test]
    fn reset_clears_everything() {
        let c = Cost::new();
        let _g = c.section("s");
        c.io(5);
        drop(_g);
        c.reset();
        assert!(c.total().is_zero());
        assert!(c.section_counts("s").is_zero());
        assert!(c.sections().is_empty());
    }

    #[test]
    fn delta_since_snapshots() {
        let c = Cost::new();
        c.io(5);
        let snap = c.total();
        c.io(3);
        c.comp(2);
        let d = c.total().delta_since(&snap);
        assert_eq!(d, OpCounts { ios: 3, comps: 2, hashes: 0, moves: 0 });
    }
}
