//! A tiny, deterministic, non-cryptographic hasher for hot hash maps.
//!
//! `std`'s default `RandomState` SipHash is robust against adversarial
//! keys but costs tens of nanoseconds per string and re-seeds per process,
//! which (a) is slow in per-tuple loops and (b) makes map *iteration*
//! order differ run to run. The engine is a closed simulation — keys are
//! its own surrogate IDs and metric names, never attacker-controlled — so
//! we use the multiply-xor scheme popularized by rustc's FxHash: fold each
//! 8-byte chunk with a rotate-xor-multiply round. Seeding is fixed, so two
//! identical runs hash identically.
//!
//! Determinism caveat unchanged from `std`: nothing here licenses
//! iteration-order-dependent logic. Code whose output depends on map order
//! must keep using `BTreeMap`/sorted collection, exactly as before.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (a 64-bit odd constant derived from
/// the golden ratio), chosen to mix low-entropy integer keys well.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one `u64` folded with rotate-xor-multiply per write.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" hash differently.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Fixed-seed `BuildHasher`: every map built with it hashes identically in
/// every process.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by [`FxHasher`] — for hot, trusted-key maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`] — for hot, trusted-key sets.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of("pool.hits"), hash_of("pool.hits"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of("pool.hits"), hash_of("pool.miss"));
    }

    #[test]
    fn tail_bytes_are_length_tagged() {
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
        assert_ne!(hash_of(b"".as_slice()), hash_of(b"\0".as_slice()));
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
