//! Property-based tests for the storage substrate.
//!
//! The slotted page is modelled against a `HashMap<u16, Vec<u8>>`: any
//! sequence of insert/delete/update operations must leave the page agreeing
//! with the model, and a serialize/deserialize cycle must be the identity.

use proptest::prelude::*;
use std::collections::HashMap;

use trijoin_common::{Cost, SystemParams};
use trijoin_storage::{HeapFile, SimDisk, SlottedPage};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 1..60).prop_map(Op::Insert),
        1 => any::<usize>().prop_map(Op::Delete),
        1 => (any::<usize>(), prop::collection::vec(any::<u8>(), 1..60))
            .prop_map(|(i, v)| Op::Update(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut page = SlottedPage::new(1024);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(rec) => {
                    match page.insert(&rec) {
                        Ok(slot) => {
                            prop_assert!(!model.contains_key(&slot),
                                "insert returned a live slot");
                            model.insert(slot, rec);
                        }
                        Err(_) => {
                            // Page reported it doesn't fit; verify that's
                            // honest w.r.t. usable space.
                            prop_assert!(!page.fits(rec.len()));
                        }
                    }
                }
                Op::Delete(i) => {
                    let live: Vec<u16> = model.keys().copied().collect();
                    if live.is_empty() { continue; }
                    let slot = live[i % live.len()];
                    page.delete(slot).unwrap();
                    model.remove(&slot);
                }
                Op::Update(i, rec) => {
                    let live: Vec<u16> = model.keys().copied().collect();
                    if live.is_empty() { continue; }
                    let slot = live[i % live.len()];
                    match page.update(slot, &rec) {
                        Ok(()) => { model.insert(slot, rec); }
                        Err(_) => {
                            prop_assert!(rec.len() > model[&slot].len(),
                                "update may only fail when growing");
                        }
                    }
                }
            }
            // Page and model agree after every step.
            prop_assert_eq!(page.live_count(), model.len());
            for (&slot, rec) in &model {
                prop_assert_eq!(page.get(slot).unwrap(), &rec[..]);
            }
        }
        // Disk-format round trip preserves everything.
        let restored = SlottedPage::from_bytes(page.bytes().to_vec()).unwrap();
        prop_assert_eq!(restored.live_count(), model.len());
        for (&slot, rec) in &model {
            prop_assert_eq!(restored.get(slot).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn heap_writer_scan_preserves_order_and_io_budget(
        recs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..50), 0..200)
    ) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost.clone());
        let mut w = trijoin_storage::heap::HeapWriter::create(&disk);
        for r in &recs {
            w.add(r).unwrap();
        }
        let heap: HeapFile = w.finish().unwrap();
        let write_ios = cost.total().ios;
        prop_assert_eq!(write_ios, heap.num_pages() as u64, "one write per page");

        let scanned: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        prop_assert_eq!(&scanned, &recs, "scan must preserve append order");
        let scan_ios = cost.total().ios - write_ios;
        prop_assert_eq!(scan_ios, heap.num_pages() as u64, "one read per page");
    }
}
