//! The simulated disk.
//!
//! [`SimDisk`] charges one random-I/O operation into the shared [`Cost`]
//! ledger for every page read and every page write. The paper prices
//! sequential and random accesses identically (a single `IO = 25 ms`
//! constant), so the disk does not model seek locality — doing so would
//! make the engine *diverge* from the analytical model.
//!
//! Page allocation and file creation are free: they are bookkeeping, not
//! device traffic; a freshly allocated page only costs when it is written.
//!
//! Where the pages actually live is a [`StorageBackend`]: the in-memory
//! [`crate::backend::MemBackend`] (the default, and what every golden
//! ledger is pinned on), the real-file [`crate::backend::FileBackend`],
//! or the write-ahead-logging [`crate::wal::DurableBackend`]. The fault
//! gates, damage marks, cost charges and metrics all live *here*, above
//! the backend, so they are identical whichever medium is plugged in —
//! the ledger is the paper's model regardless of where the bytes go.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

use trijoin_common::{
    Cost, CounterId, Error, EventKind, EventLog, FaultKind, FaultOp, Metrics, Result, SystemParams,
};

use crate::backend::{
    CheckpointStats, CommitSabotage, CommitStats, Durability, MemBackend, PageWrite, StorageBackend,
};

/// Identifier of a simulated file (a growable array of pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Identifier of one page: a file plus a page number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: u32,
}

impl PageId {
    /// Convenience constructor.
    pub fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// One scheduled fault: after `after` further *matching* charged operations
/// succeed, the next matching operation fails with the given [`FaultKind`].
///
/// An operation matches when its direction equals `op` and, if `file` is
/// set, it targets that file. Free (uncharged) accesses never match — they
/// model permanently memory-resident pages and test instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Restrict the fault to one file (`None` = any file).
    pub file: Option<FileId>,
    /// Which operation direction the fault targets.
    pub op: FaultOp,
    /// Matching operations to let through before firing (0 = the next one).
    pub after: u64,
    /// Behaviour when the fault fires.
    pub kind: FaultKind,
}

/// A schedule of device faults for a [`SimDisk`], built either explicitly
/// (one [`FaultSpec`] per fault site) or deterministically from a seed.
/// Install with [`SimDisk::install_fault_plan`]; every fault fires exactly
/// once and is then removed from the plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults, each with an independent countdown.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an arbitrary spec.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Fail the `n`-th charged read (0-based) of `file` (or of any file)
    /// with a transient fault: the retried read succeeds.
    pub fn fail_nth_read(self, file: Option<FileId>, n: u64) -> Self {
        self.with(FaultSpec { file, op: FaultOp::Read, after: n, kind: FaultKind::Transient })
    }

    /// Fail the `n`-th charged write with a transient fault.
    pub fn fail_nth_write(self, file: Option<FileId>, n: u64) -> Self {
        self.with(FaultSpec { file, op: FaultOp::Write, after: n, kind: FaultKind::Transient })
    }

    /// Tear the `n`-th charged write: only a prefix of the page persists and
    /// the page reads back as damaged until something rewrites it.
    pub fn torn_write(self, file: Option<FileId>, n: u64) -> Self {
        self.with(FaultSpec { file, op: FaultOp::Write, after: n, kind: FaultKind::TornWrite })
    }

    /// Poison the page hit by the `n`-th charged read: that read and every
    /// later read of the same page fail until the page is rewritten.
    pub fn poison_nth_read(self, file: Option<FileId>, n: u64) -> Self {
        self.with(FaultSpec { file, op: FaultOp::Read, after: n, kind: FaultKind::Poisoned })
    }

    /// A small pseudo-random schedule derived deterministically from `seed`
    /// (same seed ⇒ identical plan): 1–3 faults with mixed kinds, scoped to
    /// `files` round-robin when any are given.
    pub fn from_seed(seed: u64, files: &[FileId]) -> Self {
        use rand::Rng;
        let mut rng = trijoin_common::rng::seeded(trijoin_common::rng::derive(seed, "fault-plan"));
        let count = rng.gen_range(1u32..=3);
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let file =
                if files.is_empty() { None } else { Some(files[(i as usize) % files.len()]) };
            let after = rng.gen_range(0u64..64);
            let spec = match rng.gen_range(0u32..4) {
                0 => FaultSpec { file, op: FaultOp::Read, after, kind: FaultKind::Transient },
                1 => FaultSpec { file, op: FaultOp::Write, after, kind: FaultKind::Transient },
                2 => FaultSpec { file, op: FaultOp::Read, after, kind: FaultKind::Poisoned },
                _ => FaultSpec { file, op: FaultOp::Write, after, kind: FaultKind::TornWrite },
            };
            plan.specs.push(spec);
        }
        plan
    }
}

/// The disk's storage medium, dispatched statically for the default
/// in-memory store and dynamically for everything else. The page
/// read/write hot paths run once per simulated I/O; routing the common
/// [`MemBackend`] case through a concrete type (instead of a
/// `Box<dyn StorageBackend>` vtable) lets those calls inline, so the
/// non-durable path pays zero dispatch overhead for the durability
/// machinery's pluggability.
enum BackendKind {
    /// The in-memory default (`SimDisk::new`) — statically dispatched.
    Mem(MemBackend),
    /// Any other medium (file-backed, WAL) — dynamically dispatched;
    /// these paths are dominated by real syscalls, not dispatch.
    Dyn(Box<dyn StorageBackend>),
}

impl BackendKind {
    /// The medium as a trait object, for cold (non-per-page) verbs.
    fn as_dyn(&self) -> &dyn StorageBackend {
        match self {
            BackendKind::Mem(m) => m,
            BackendKind::Dyn(d) => d.as_ref(),
        }
    }

    #[inline]
    fn read_page(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        match self {
            BackendKind::Mem(m) => m.read_page(pid),
            BackendKind::Dyn(d) => d.read_page(pid),
        }
    }

    #[inline]
    fn write_page(&self, pid: PageId, data: PageWrite<'_>) -> Result<()> {
        match self {
            BackendKind::Mem(m) => m.write_page(pid, data),
            BackendKind::Dyn(d) => d.write_page(pid, data),
        }
    }

    #[inline]
    fn num_pages(&self, file: FileId) -> Result<u32> {
        match self {
            BackendKind::Mem(m) => m.num_pages(file),
            BackendKind::Dyn(d) => d.num_pages(file),
        }
    }

    #[inline]
    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        match self {
            BackendKind::Mem(m) => m.allocate_page(file),
            BackendKind::Dyn(d) => d.allocate_page(file),
        }
    }

    #[inline]
    fn wal_enabled(&self) -> bool {
        match self {
            BackendKind::Mem(_) => false,
            BackendKind::Dyn(d) => d.wal_enabled(),
        }
    }
}

/// Auto-checkpoint policy: after this many frame-carrying commits the
/// disk checkpoints itself, bounding both the log length and the
/// committed-overlay apply backlog without ever putting the data-file
/// apply on an individual commit's path.
const AUTO_CHECKPOINT_EVERY: u64 = 512;

/// Async-apply policy: every this many frame-carrying *barrier*
/// commits the committed overlay is written into the data files
/// without syncing them or truncating the log. Spreads the apply work
/// so a checkpoint never has to drain [`AUTO_CHECKPOINT_EVERY`]
/// commits' worth of pages in one stall, and keeps the read path's
/// overlay small. Only fsynced commits qualify: right after a barrier
/// the apply's own log seal is a no-op, so the drain is pure page
/// writes.
const AUTO_APPLY_EVERY: u64 = 64;

/// Page store with paper-accurate I/O accounting over a pluggable
/// [`StorageBackend`].
pub struct SimDisk {
    backend: BackendKind,
    page_size: usize,
    cost: Cost,
    /// Remaining charged I/Os before the next one fails (fault injection
    /// for error-path tests); `None` = healthy. Legacy one-shot countdown:
    /// fires [`Error::Faulted`], which the execution layer surfaces as-is.
    fault_in: RefCell<Option<u64>>,
    /// Active scheduled faults (installed via
    /// [`SimDisk::install_fault_plan`]); each fires once and is removed.
    plan: RefCell<Vec<FaultSpec>>,
    /// Pages with a persistent media error: reads fail until rewritten.
    poisoned: RefCell<HashSet<(u32, u32)>>,
    /// Pages holding a detectable partial write: reads fail until rewritten.
    torn: RefCell<HashSet<(u32, u32)>>,
    /// Total scheduled faults fired so far (tests assert exactly-once).
    fired: RefCell<u64>,
    /// Engine-wide metrics registry; every layer holding this disk handle
    /// (pool, strategies, `Database`) reports into the same registry.
    metrics: Metrics,
    /// Engine-wide structured-event log, shared the same way.
    events: EventLog,
    /// Interned handles for the per-I/O counters, resolved once: the read
    /// and write hot paths bump array slots instead of hashing
    /// `"disk.reads"` / `format!("disk.read.f{n}")` on every page.
    c_reads: CounterId,
    c_writes: CounterId,
    /// Per-file `(read, write)` counter handles, indexed by `FileId`,
    /// interned at `create_file` time.
    file_counters: RefCell<Vec<(CounterId, CounterId)>>,
    /// Frame-carrying commits since the last checkpoint (drives the
    /// every-N auto-checkpoint policy on WAL backends).
    commits_since_ckpt: Cell<u64>,
    /// Set when a crash sabotage is armed: the "process" dies inside
    /// that commit, so the background checkpointer must not run on it.
    sabotaged: Cell<bool>,
}

/// Shared handle to a [`SimDisk`]; the simulator is single-threaded.
pub type Disk = Rc<SimDisk>;

impl SimDisk {
    /// Create a disk over the in-memory backend with the page size of
    /// `params`, charging into `cost`. This is the golden-ledger path:
    /// byte-for-byte identical behaviour to the pre-backend `SimDisk`.
    pub fn new(params: &SystemParams, cost: Cost) -> Disk {
        Self::assemble(params, cost, BackendKind::Mem(MemBackend::new(params.page_size)))
    }

    /// Create a disk over an arbitrary [`StorageBackend`]. Per-file I/O
    /// counters are interned for every file slot the backend already
    /// holds (a reopened store arrives with files); if the backend ran
    /// crash recovery, its stats surface here as `wal.recovered.*`
    /// counters and a [`EventKind::RecoveryTriggered`] event.
    pub fn with_backend(
        params: &SystemParams,
        cost: Cost,
        backend: Box<dyn StorageBackend>,
    ) -> Disk {
        Self::assemble(params, cost, BackendKind::Dyn(backend))
    }

    fn assemble(params: &SystemParams, cost: Cost, backend: BackendKind) -> Disk {
        let metrics = Metrics::new();
        let backend_dyn = backend.as_dyn();
        let c_reads = metrics.counter_handle("disk.reads");
        let c_writes = metrics.counter_handle("disk.writes");
        let file_counters = (0..backend_dyn.file_count())
            .map(|n| {
                (
                    metrics.counter_handle(&format!("disk.read.f{n}")),
                    metrics.counter_handle(&format!("disk.write.f{n}")),
                )
            })
            .collect();
        let events = EventLog::new();
        if backend_dyn.wal_enabled() {
            metrics.gauge_set("wal.enabled", 1.0);
            metrics.gauge_set("wal.len_bytes", backend_dyn.wal_len_bytes() as f64);
        }
        if let Some(stats) = backend_dyn.take_recovery_stats() {
            metrics.counter_add("wal.recovered.frames", stats.frames);
            metrics.counter_add("wal.recovered.commits", stats.commits);
            metrics.counter_add("wal.recovered.torn_bytes", stats.torn_bytes);
            events.emit(
                EventKind::RecoveryTriggered,
                format!(
                    "wal recovery: replayed {} frames across {} commits, \
                     truncated {} torn bytes",
                    stats.frames, stats.commits, stats.torn_bytes
                ),
                cost.total(),
            );
            // Redo is device traffic: one sequential I/O per replayed
            // frame, priced on the paper's single constant.
            cost.io(stats.frames);
        }
        Rc::new(SimDisk {
            backend,
            page_size: params.page_size,
            cost,
            fault_in: RefCell::new(None),
            plan: RefCell::new(Vec::new()),
            poisoned: RefCell::new(HashSet::new()),
            torn: RefCell::new(HashSet::new()),
            fired: RefCell::new(0),
            metrics,
            events,
            c_reads,
            c_writes,
            file_counters: RefCell::new(file_counters),
            commits_since_ckpt: Cell::new(0),
            sabotaged: Cell::new(false),
        })
    }

    /// Whether the backend runs a write-ahead log.
    pub fn wal_enabled(&self) -> bool {
        self.backend.wal_enabled()
    }

    /// Current log length in bytes (0 without a WAL).
    pub fn wal_len_bytes(&self) -> u64 {
        self.backend.as_dyn().wal_len_bytes()
    }

    /// Committed page images awaiting the checkpointer's data-file
    /// apply (0 without a WAL).
    pub fn wal_apply_lag(&self) -> u64 {
        self.backend.as_dyn().wal_apply_lag()
    }

    /// Commit everything written since the last commit with the classic
    /// barrier contract (append + fsync before returning). A no-op `Ok`
    /// on backends without a WAL.
    pub fn commit(&self) -> Result<CommitStats> {
        self.commit_with(Durability::Barrier)
    }

    /// Commit with an explicit durability level: [`Durability::Barrier`]
    /// appends the sealed group and fsyncs it (plus every deferred group
    /// before it); [`Durability::Deferred`] appends to the group-commit
    /// buffer only, sharing a later barrier's fsync. Surfaces `wal.*`
    /// counters and charges the group flush (one I/O per frame plus the
    /// commit frame) into the ledger; the charge models the log append
    /// and is durability-independent, so golden ledgers cannot tell the
    /// two levels apart.
    pub fn commit_with(&self, durability: Durability) -> Result<CommitStats> {
        let sabotaged = self.sabotaged.replace(false);
        let stats = self.backend.as_dyn().commit(durability)?;
        if self.backend.wal_enabled() {
            self.metrics.incr("wal.commits");
            self.metrics.counter_add("wal.frames", stats.frames);
            self.metrics.counter_add("wal.bytes", stats.bytes);
            self.metrics.counter_add("wal.fsyncs", stats.fsyncs);
            self.metrics.counter_add("wal.frames_skipped", stats.frames_skipped);
            // Re-stamped (not only set at construction) so a
            // `reset_observability` measurement boundary cannot strip the
            // WAL marker from subsequent reports.
            self.metrics.gauge_set("wal.enabled", 1.0);
            self.stamp_wal_gauges();
            if stats.frames > 0 {
                self.cost.io(stats.frames + 1);
                // Every-N-commits checkpoint policy: bound the log and
                // the apply backlog off the per-commit path. A sabotaged
                // commit simulates the process dying inside it — no
                // background checkpointer gets to run after that.
                let n = self.commits_since_ckpt.get() + 1;
                self.commits_since_ckpt.set(n);
                if n >= AUTO_CHECKPOINT_EVERY && !sabotaged {
                    self.checkpoint()?;
                } else if n.is_multiple_of(AUTO_APPLY_EVERY) && !sabotaged && stats.fsyncs > 0 {
                    // Piggyback the apply on a commit that already
                    // fsynced the log: the apply's own log seal then
                    // finds an empty buffer and the whole drain is
                    // pure page writes. Deferred streams skip this (an
                    // apply would force the fsync they deferred) and
                    // stay bounded by the checkpoint interval alone.
                    self.apply_backlog()?;
                }
            }
        }
        Ok(stats)
    }

    /// Apply the committed backlog into the data files without syncing
    /// them or truncating the log (the cheap, frequent half of a
    /// checkpoint — one log fsync at most). A no-op `Ok` on backends
    /// without a WAL.
    pub fn apply_backlog(&self) -> Result<(u64, u64)> {
        let (pages, fsyncs) = self.backend.as_dyn().apply_backlog()?;
        if self.backend.wal_enabled() {
            self.metrics.incr("wal.applies");
            self.metrics.counter_add("wal.fsyncs", fsyncs);
            self.metrics.counter_add("wal.pages_applied", pages);
            self.stamp_wal_gauges();
        }
        Ok((pages, fsyncs))
    }

    /// Checkpoint: commit any pending work, apply the committed overlay
    /// to the data files, sync them, and truncate the log. A no-op `Ok`
    /// on backends without a WAL.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        // Reset the auto-checkpoint countdown first so the routed
        // commit below cannot re-trigger a checkpoint.
        self.commits_since_ckpt.set(0);
        // Route the flush through `commit` so its wal.* accounting and
        // ledger charges are identical to a caller-issued commit.
        self.commit()?;
        let stats = self.backend.as_dyn().checkpoint()?;
        if self.backend.wal_enabled() {
            self.metrics.incr("wal.checkpoints");
            self.metrics.counter_add("wal.truncated_bytes", stats.truncated_bytes);
            self.stamp_wal_gauges();
        }
        Ok(stats)
    }

    /// Re-stamp the WAL state gauges (log length, apply backlog).
    fn stamp_wal_gauges(&self) {
        let backend = self.backend.as_dyn();
        self.metrics.gauge_set("wal.len_bytes", backend.wal_len_bytes() as f64);
        self.metrics.gauge_set("wal.apply_lag", backend.wal_apply_lag() as f64);
    }

    /// Arm a simulated crash inside the next commit (harness only).
    pub fn sabotage_next_commit(&self, mode: CommitSabotage) {
        self.sabotaged.set(true);
        self.backend.as_dyn().sabotage_next_commit(mode);
    }

    /// The engine-wide metrics registry (the disk is the one object every
    /// layer already shares, so it carries the observability handles).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The engine-wide structured-event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Record a fired fault in the metrics registry and event log.
    fn observe_fault(&self, op: FaultOp, kind: FaultKind, pid: PageId) {
        self.metrics.incr(&format!("disk.faults.{kind}"));
        self.events.emit(
            EventKind::FaultFired,
            format!("{kind} on {op} f{} page {}", pid.file.0, pid.page),
            self.cost.total(),
        );
    }

    /// Arrange for the charged I/O operation `after` operations from now to
    /// fail with [`Error::Faulted`] (0 = the very next one). The fault
    /// fires once and clears; free (resident/test) accesses don't count.
    pub fn inject_fault(&self, after: u64) {
        *self.fault_in.borrow_mut() = Some(after);
    }

    /// Cancel a pending injected fault.
    pub fn clear_fault(&self) {
        *self.fault_in.borrow_mut() = None;
    }

    /// Install a fault schedule (replacing any previous one). Damage marks
    /// (torn/poisoned pages) from earlier plans are kept: they model
    /// persistent media state, not schedule state.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        *self.plan.borrow_mut() = plan.specs;
    }

    /// Add one scheduled fault to the active plan.
    pub fn schedule_fault(&self, spec: FaultSpec) {
        self.plan.borrow_mut().push(spec);
    }

    /// Clear everything fault-related: the legacy countdown, the scheduled
    /// plan, and all damage marks (healing torn/poisoned pages in place).
    pub fn clear_faults(&self) {
        self.clear_fault();
        self.plan.borrow_mut().clear();
        self.poisoned.borrow_mut().clear();
        self.torn.borrow_mut().clear();
    }

    /// Scheduled faults that have fired so far (exactly-once accounting).
    pub fn faults_fired(&self) -> u64 {
        *self.fired.borrow()
    }

    /// Pages currently carrying a damage mark (torn or poisoned) — the
    /// serving layer's per-shard health probe: a shard with damaged pages
    /// is degraded (queries recover or rebuild) but still serving.
    pub fn damaged_pages(&self) -> usize {
        self.torn.borrow().len() + self.poisoned.borrow().len()
    }

    /// Scheduled faults still pending.
    pub fn faults_pending(&self) -> usize {
        self.plan.borrow().len()
    }

    /// Mark a page as persistently unreadable until rewritten.
    pub fn poison_page(&self, pid: PageId) {
        self.poisoned.borrow_mut().insert((pid.file.0, pid.page));
    }

    /// True while `pid` carries a media-error mark.
    pub fn is_poisoned(&self, pid: PageId) -> bool {
        self.poisoned.borrow().contains(&(pid.file.0, pid.page))
    }

    /// True while `pid` holds a detectable partial write.
    pub fn is_torn(&self, pid: PageId) -> bool {
        self.torn.borrow().contains(&(pid.file.0, pid.page))
    }

    /// Fail reads of damaged (torn or poisoned) pages.
    fn check_damage(&self, pid: PageId) -> Result<()> {
        if self.is_torn(pid) {
            return Err(Error::DeviceFault {
                op: FaultOp::Read,
                kind: FaultKind::TornWrite,
                file: pid.file.0,
                page: pid.page,
            });
        }
        if self.is_poisoned(pid) {
            return Err(Error::DeviceFault {
                op: FaultOp::Read,
                kind: FaultKind::Poisoned,
                file: pid.file.0,
                page: pid.page,
            });
        }
        Ok(())
    }

    /// Count this charged operation against every matching scheduled fault;
    /// returns the kind of the fault that fires on it, if any. Each spec
    /// fires at most once and is removed from the plan when it does.
    fn next_scheduled(&self, op: FaultOp, pid: PageId) -> Option<FaultKind> {
        let mut plan = self.plan.borrow_mut();
        let matches =
            |spec: &FaultSpec| spec.op == op && spec.file.map(|f| f == pid.file).unwrap_or(true);
        let fire_idx = plan.iter().position(|s| matches(s) && s.after == 0);
        match fire_idx {
            Some(idx) => {
                // The operation fails: it does not count against the other
                // specs' let-through budgets.
                let spec = plan.remove(idx);
                drop(plan);
                *self.fired.borrow_mut() += 1;
                Some(spec.kind)
            }
            None => {
                for spec in plan.iter_mut().filter(|s| matches(s)) {
                    spec.after -= 1;
                }
                None
            }
        }
    }

    /// Returns `Err(Faulted)` when the pending fault fires on this
    /// operation; counts down otherwise.
    fn check_fault(&self) -> Result<()> {
        let mut fault = self.fault_in.borrow_mut();
        match fault.as_mut() {
            Some(0) => {
                *fault = None;
                Err(Error::Faulted)
            }
            Some(n) => {
                *n -= 1;
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The shared cost ledger this disk charges into.
    pub fn cost(&self) -> &Cost {
        &self.cost
    }

    /// Create a new, empty file.
    pub fn create_file(&self) -> FileId {
        let id = self.backend.as_dyn().create_file();
        // Intern this file's per-file I/O counters once, here, so the
        // read/write hot paths never format a name again. Resolving a
        // handle does not register the counter: an untouched file still
        // stays out of snapshots.
        self.file_counters.borrow_mut().push((
            self.metrics.counter_handle(&format!("disk.read.f{}", id.0)),
            self.metrics.counter_handle(&format!("disk.write.f{}", id.0)),
        ));
        id
    }

    /// Delete a file, releasing its pages and any damage marks on them.
    /// Idempotent.
    pub fn delete_file(&self, file: FileId) {
        self.backend.as_dyn().delete_file(file);
        self.poisoned.borrow_mut().retain(|&(f, _)| f != file.0);
        self.torn.borrow_mut().retain(|&(f, _)| f != file.0);
    }

    /// Number of pages currently allocated in `file`.
    pub fn num_pages(&self, file: FileId) -> Result<u32> {
        self.backend.num_pages(file)
    }

    /// Append a zeroed page to `file`. Free of I/O charge (bookkeeping).
    pub fn allocate_page(&self, file: FileId) -> Result<PageId> {
        self.backend.allocate_page(file)
    }

    /// Fault/damage gate for one charged read: the legacy countdown, damage
    /// marks, and the scheduled-fault plan, checked in exactly the order
    /// the original `read_page` checked them.
    fn gate_read(&self, pid: PageId) -> Result<()> {
        self.check_fault()?;
        self.check_damage(pid)?;
        if let Some(kind) = self.next_scheduled(FaultOp::Read, pid) {
            if kind == FaultKind::Poisoned {
                self.poison_page(pid);
            }
            self.observe_fault(FaultOp::Read, kind, pid);
            return Err(Error::DeviceFault {
                op: FaultOp::Read,
                kind,
                file: pid.file.0,
                page: pid.page,
            });
        }
        Ok(())
    }

    /// Charge one successful read of `pid` into the ledger and metrics.
    #[inline]
    fn charge_read(&self, pid: PageId) {
        self.cost.io(1);
        self.metrics.incr_id(self.c_reads);
        self.metrics.incr_id(self.file_counters.borrow()[pid.file.0 as usize].0);
    }

    /// Read a page, charging one random I/O. Damaged (torn/poisoned) pages
    /// and scheduled read faults fail here with a typed
    /// [`Error::DeviceFault`]; failed reads charge nothing.
    pub fn read_page(&self, pid: PageId) -> Result<Vec<u8>> {
        self.read_page_with(pid, |page| Ok(page.to_vec()))
    }

    /// Read a page and hand the caller a *borrowed* view of it — same
    /// checks and same single-I/O charge as [`SimDisk::read_page`], minus
    /// the page-sized allocation on the in-memory backend. The closure
    /// must not call back into the disk; decode-and-return is the
    /// intended shape.
    pub fn read_page_with<T>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> Result<T>) -> Result<T> {
        self.gate_read(pid)?;
        let page = self.backend.read_page(pid)?;
        self.charge_read(pid);
        f(&page)
    }

    /// Read a page as a shared, reference-counted image — same checks and
    /// same single-I/O charge as [`SimDisk::read_page`], minus both the
    /// allocation *and* the page-sized copy: the caller shares the disk's
    /// own buffer. Mutating the image requires [`Rc::make_mut`], which
    /// copies at that point (copy-on-write), so the disk's copy is never
    /// visible to the caller's writes.
    pub fn read_page_rc(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        self.gate_read(pid)?;
        let image = self.backend.read_page(pid)?;
        self.charge_read(pid);
        Ok(image)
    }

    /// Batched sequential read: append `count` pages of `file`, starting at
    /// `start_page`, contiguously onto `buf`. Charge-identical to `count`
    /// individual `read_page` calls in ascending page order — each page
    /// passes the same fault gate and charges one I/O — but makes a single
    /// engine call and a single buffer-growth decision for the whole run.
    ///
    /// Stops at the first failing page and returns its error; `buf` keeps
    /// every page read before it (progress = `buf.len() / page_size`
    /// pages), so retry logic can resume from the failure point.
    pub fn read_run(
        &self,
        file: FileId,
        start_page: u32,
        count: u32,
        buf: &mut Vec<u8>,
    ) -> Result<()> {
        buf.reserve(count as usize * self.page_size);
        for page in start_page..start_page + count {
            let pid = PageId::new(file, page);
            self.gate_read(pid)?;
            let data = self.backend.read_page(pid)?;
            buf.extend_from_slice(&data);
            self.charge_read(pid);
        }
        Ok(())
    }

    /// Write a page, charging one random I/O. `data` must be exactly one
    /// page long.
    pub fn write_page(&self, pid: PageId, data: &[u8]) -> Result<()> {
        self.write_page_impl(pid, data, None)
    }

    /// Write a page from a shared image, charging one random I/O — the
    /// zero-copy dual of [`SimDisk::read_page_rc`]: on success the disk
    /// stores the `Rc` itself instead of copying the bytes. Identical fault
    /// gating and charges to [`SimDisk::write_page`].
    pub fn write_page_rc(&self, pid: PageId, data: Rc<Vec<u8>>) -> Result<()> {
        self.write_page_impl(pid, &data, Some(&data))
    }

    fn write_page_impl(&self, pid: PageId, data: &[u8], rc: Option<&Rc<Vec<u8>>>) -> Result<()> {
        if data.len() != self.page_size {
            return Err(Error::Invariant(format!(
                "write_page: got {} bytes, page size is {}",
                data.len(),
                self.page_size
            )));
        }
        self.check_fault()?;
        let scheduled = self.next_scheduled(FaultOp::Write, pid);
        // Missing pages win over scheduled faults (and the fired spec
        // stays consumed), exactly like the pre-backend lookup order.
        let pages = self
            .backend
            .num_pages(pid.file)
            .map_err(|_| Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        if pid.page >= pages {
            return Err(Error::PageNotFound { file: pid.file.0, page: pid.page });
        }
        if let Some(kind) = scheduled {
            match kind {
                FaultKind::TornWrite => {
                    // Half the page reaches the medium; the page is now
                    // detectably damaged until something rewrites it.
                    // The splice is built here, above the backend, so a
                    // torn write looks the same on every medium.
                    let old = self.backend.read_page(pid)?;
                    let mut spliced = old.as_ref().clone();
                    let half = self.page_size / 2;
                    spliced[..half].copy_from_slice(&data[..half]);
                    self.backend.write_page(pid, PageWrite::Borrowed(&spliced))?;
                    self.torn.borrow_mut().insert((pid.file.0, pid.page));
                }
                FaultKind::Poisoned => {
                    self.poison_page(pid);
                }
                FaultKind::Transient => {}
            }
            self.observe_fault(FaultOp::Write, kind, pid);
            return Err(Error::DeviceFault {
                op: FaultOp::Write,
                kind,
                file: pid.file.0,
                page: pid.page,
            });
        }
        match rc {
            Some(rc) => self.backend.write_page(pid, PageWrite::Shared(rc))?,
            None => self.backend.write_page(pid, PageWrite::Borrowed(data))?,
        }
        self.cost.io(1);
        self.metrics.incr_id(self.c_writes);
        self.metrics.incr_id(self.file_counters.borrow()[pid.file.0 as usize].1);
        // A successful full-page write heals any damage mark.
        self.torn.borrow_mut().remove(&(pid.file.0, pid.page));
        self.poisoned.borrow_mut().remove(&(pid.file.0, pid.page));
        Ok(())
    }

    /// Allocate a page and write it in one step (single I/O charge).
    pub fn append_page(&self, file: FileId, data: &[u8]) -> Result<PageId> {
        let pid = self.allocate_page(file)?;
        self.write_page(pid, data)?;
        Ok(pid)
    }

    /// Batched sequential append (the write half of [`SimDisk::read_run`]):
    /// `data` holds a whole run of page images back to back; each page is
    /// allocated and written in order with the full per-page fault gate and
    /// one I/O charge — identical to calling [`SimDisk::append_page`] once
    /// per page. Returns the `PageId` of the first page written. Stops at
    /// the first failing page: earlier pages stay written, the failing page
    /// stays allocated (carrying whatever damage the fault left).
    pub fn write_run(&self, file: FileId, data: &[u8]) -> Result<PageId> {
        if data.is_empty() || !data.len().is_multiple_of(self.page_size) {
            return Err(Error::Invariant(format!(
                "write_run: got {} bytes, not a positive multiple of page size {}",
                data.len(),
                self.page_size
            )));
        }
        let mut first = None;
        for chunk in data.chunks_exact(self.page_size) {
            let pid = self.append_page(file, chunk)?;
            first.get_or_insert(pid);
        }
        Ok(first.expect("write_run: at least one page"))
    }

    /// Read a page **without** charging I/O. Reserved for pages the paper
    /// assumes permanently memory-resident (B⁺-tree roots) and for test
    /// assertions that must not perturb the ledger.
    pub fn read_page_free(&self, pid: PageId) -> Result<Vec<u8>> {
        self.read_page_free_with(pid, |page| Ok(page.to_vec()))
    }

    /// Borrowed-view variant of [`SimDisk::read_page_free`] (no I/O charge,
    /// no allocation). Same closure restriction as
    /// [`SimDisk::read_page_with`]: no re-entry into the disk.
    pub fn read_page_free_with<T>(
        &self,
        pid: PageId,
        f: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Result<T> {
        let page = self.backend.read_page(pid)?;
        f(&page)
    }

    /// Shared-image variant of [`SimDisk::read_page_free`] (no I/O charge,
    /// no allocation, no copy): the caller shares the disk's own buffer,
    /// with copy-on-write isolation as in [`SimDisk::read_page_rc`].
    pub fn read_page_free_rc(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        self.backend.read_page(pid)
    }

    /// Write a page **without** charging I/O (resident pages; see
    /// [`SimDisk::read_page_free`]).
    pub fn write_page_free(&self, pid: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(Error::Invariant("write_page_free: wrong length".into()));
        }
        self.backend.write_page(pid, PageWrite::Borrowed(data))
    }

    /// Total pages currently allocated across all live files (for tests and
    /// space reporting).
    pub fn total_pages(&self) -> u64 {
        self.backend.as_dyn().total_pages()
    }
}

impl std::fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDisk")
            .field("page_size", &self.page_size)
            .field("total_pages", &self.total_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (Disk, Cost) {
        let cost = Cost::new();
        let params = SystemParams::paper_defaults();
        (SimDisk::new(&params, cost.clone()), cost)
    }

    #[test]
    fn read_write_roundtrip_charges_io() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        assert_eq!(c.total().ios, 0, "allocation is free");
        let mut data = vec![0u8; d.page_size()];
        data[0] = 0xAB;
        data[3999] = 0xCD;
        d.write_page(pid, &data).unwrap();
        assert_eq!(c.total().ios, 1);
        let back = d.read_page(pid).unwrap();
        assert_eq!(back, data);
        assert_eq!(c.total().ios, 2);
    }

    #[test]
    fn free_access_does_not_charge() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![7u8; d.page_size()];
        d.write_page_free(pid, &data).unwrap();
        assert_eq!(d.read_page_free(pid).unwrap(), data);
        assert_eq!(c.total().ios, 0);
    }

    #[test]
    fn missing_pages_error() {
        let (d, _c) = disk();
        let f = d.create_file();
        let missing = PageId::new(f, 5);
        assert!(matches!(d.read_page(missing), Err(Error::PageNotFound { .. })));
        assert!(matches!(d.read_page(PageId::new(FileId(99), 0)), Err(Error::PageNotFound { .. })));
    }

    #[test]
    fn wrong_sized_write_rejected() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        assert!(d.write_page(pid, &[0u8; 10]).is_err());
        assert_eq!(c.total().ios, 0, "failed write must not charge");
    }

    #[test]
    fn delete_file_releases_pages() {
        let (d, _c) = disk();
        let f = d.create_file();
        d.allocate_page(f).unwrap();
        d.allocate_page(f).unwrap();
        assert_eq!(d.total_pages(), 2);
        d.delete_file(f);
        assert_eq!(d.total_pages(), 0);
        assert!(d.num_pages(f).is_err());
        d.delete_file(f); // idempotent
    }

    #[test]
    fn files_are_independent() {
        let (d, _c) = disk();
        let f1 = d.create_file();
        let f2 = d.create_file();
        let p1 = d.allocate_page(f1).unwrap();
        let p2 = d.allocate_page(f2).unwrap();
        d.write_page(p1, &vec![1u8; d.page_size()]).unwrap();
        d.write_page(p2, &vec![2u8; d.page_size()]).unwrap();
        assert_eq!(d.read_page(p1).unwrap()[0], 1);
        assert_eq!(d.read_page(p2).unwrap()[0], 2);
        assert_eq!(d.num_pages(f1).unwrap(), 1);
    }

    #[test]
    fn fault_plan_fires_exactly_once() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![5u8; d.page_size()];
        d.write_page(pid, &data).unwrap();

        d.install_fault_plan(FaultPlan::new().fail_nth_read(None, 2));
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(d.read_page(pid).is_ok());
        }
        assert_eq!(outcomes, [true, true, false, true, true, true]);
        assert_eq!(d.faults_fired(), 1);
        assert_eq!(d.faults_pending(), 0);
        // The failed read charged nothing.
        assert_eq!(c.total().ios, 1 + 5);
    }

    #[test]
    fn fault_plan_scopes_to_file() {
        let (d, _c) = disk();
        let f1 = d.create_file();
        let f2 = d.create_file();
        let p1 = d.allocate_page(f1).unwrap();
        let p2 = d.allocate_page(f2).unwrap();
        let data = vec![1u8; d.page_size()];
        d.write_page(p1, &data).unwrap();
        d.write_page(p2, &data).unwrap();

        d.install_fault_plan(FaultPlan::new().fail_nth_read(Some(f2), 0));
        // Reads of f1 neither fail nor consume f2's countdown.
        assert!(d.read_page(p1).is_ok());
        assert!(d.read_page(p1).is_ok());
        let err = d.read_page(p2).unwrap_err();
        assert_eq!(
            err,
            Error::DeviceFault {
                op: FaultOp::Read,
                kind: FaultKind::Transient,
                file: f2.0,
                page: 0
            }
        );
        assert!(d.read_page(p2).is_ok(), "transient fault clears after firing");
    }

    #[test]
    fn torn_write_detected_and_healed_by_rewrite() {
        let (d, _c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let good = vec![0xAAu8; d.page_size()];
        d.write_page(pid, &good).unwrap();

        d.install_fault_plan(FaultPlan::new().torn_write(Some(f), 0));
        let fresh = vec![0xBBu8; d.page_size()];
        let err = d.write_page(pid, &fresh).unwrap_err();
        assert_eq!(
            err,
            Error::DeviceFault {
                op: FaultOp::Write,
                kind: FaultKind::TornWrite,
                file: f.0,
                page: 0
            }
        );
        assert!(d.is_torn(pid));
        // The medium holds a prefix of the new data and a suffix of the
        // old — and the damage is detected on read.
        let raw = d.read_page_free(pid).unwrap();
        assert_eq!(raw[0], 0xBB);
        assert_eq!(raw[d.page_size() - 1], 0xAA);
        let err = d.read_page(pid).unwrap_err();
        assert!(matches!(err, Error::DeviceFault { kind: FaultKind::TornWrite, .. }));
        // Rewriting the page heals it.
        d.write_page(pid, &fresh).unwrap();
        assert!(!d.is_torn(pid));
        assert_eq!(d.read_page(pid).unwrap(), fresh);
    }

    #[test]
    fn poisoned_read_persists_until_rewrite() {
        let (d, _c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![3u8; d.page_size()];
        d.write_page(pid, &data).unwrap();

        d.install_fault_plan(FaultPlan::new().poison_nth_read(Some(f), 0));
        for _ in 0..3 {
            let err = d.read_page(pid).unwrap_err();
            assert!(matches!(err, Error::DeviceFault { kind: FaultKind::Poisoned, .. }));
        }
        assert_eq!(d.faults_fired(), 1, "the mark persists; the fault fired once");
        d.write_page(pid, &data).unwrap();
        assert!(!d.is_poisoned(pid));
        assert_eq!(d.read_page(pid).unwrap(), data);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let f = FileId(0);
        let a = FaultPlan::from_seed(42, &[f]);
        let b = FaultPlan::from_seed(42, &[f]);
        let c = FaultPlan::from_seed(43, &[f]);
        assert_eq!(a, b);
        assert!(!a.specs.is_empty() && a.specs.len() <= 3);
        // Different seeds should (for these particular seeds) differ.
        assert_ne!(a, c);
    }

    #[test]
    fn clear_faults_heals_everything() {
        let (d, _c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![9u8; d.page_size()];
        d.write_page(pid, &data).unwrap();
        d.install_fault_plan(FaultPlan::new().poison_nth_read(None, 0).fail_nth_write(None, 9));
        assert!(d.read_page(pid).is_err());
        assert!(d.is_poisoned(pid));
        assert_eq!(d.damaged_pages(), 1);
        d.clear_faults();
        assert!(!d.is_poisoned(pid));
        assert_eq!(d.damaged_pages(), 0);
        assert_eq!(d.faults_pending(), 0);
        assert_eq!(d.read_page(pid).unwrap(), data);
    }

    #[test]
    fn legacy_fault_still_fires_unit_variant() {
        let (d, _c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![2u8; d.page_size()];
        d.write_page(pid, &data).unwrap();
        d.inject_fault(0);
        assert_eq!(d.read_page(pid).unwrap_err(), Error::Faulted);
        assert!(d.read_page(pid).is_ok());
    }

    #[test]
    fn metrics_and_events_observe_io_and_faults() {
        let (d, _c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![1u8; d.page_size()];
        d.write_page(pid, &data).unwrap();
        d.read_page(pid).unwrap();
        d.read_page(pid).unwrap();
        let m = d.metrics();
        assert_eq!(m.counter("disk.writes"), 1);
        assert_eq!(m.counter("disk.reads"), 2);
        assert_eq!(m.counter(&format!("disk.read.f{}", f.0)), 2);
        assert_eq!(m.counter(&format!("disk.write.f{}", f.0)), 1);

        d.install_fault_plan(FaultPlan::new().fail_nth_read(None, 0));
        assert!(d.read_page(pid).is_err());
        assert_eq!(m.counter("disk.faults.transient"), 1);
        assert_eq!(d.events().count_of(EventKind::FaultFired), 1);
        let event = &d.events().events()[0];
        assert!(event.detail.contains("transient on read"), "{}", event.detail);
    }

    #[test]
    fn append_page_is_one_io() {
        let (d, c) = disk();
        let f = d.create_file();
        let data = vec![9u8; d.page_size()];
        let pid = d.append_page(f, &data).unwrap();
        assert_eq!(pid.page, 0);
        assert_eq!(c.total().ios, 1);
        assert_eq!(d.append_page(f, &data).unwrap().page, 1);
    }

    #[test]
    fn read_page_with_borrows_and_charges_like_read_page() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let mut data = vec![0u8; d.page_size()];
        data[7] = 0x5A;
        d.write_page(pid, &data).unwrap();
        let got = d.read_page_with(pid, |page| Ok(page[7])).unwrap();
        assert_eq!(got, 0x5A);
        assert_eq!(c.total().ios, 2);
        assert_eq!(d.metrics().counter("disk.reads"), 1);
    }

    #[test]
    fn read_run_matches_per_page_reads() {
        let (d, c) = disk();
        let f = d.create_file();
        for i in 0..4u8 {
            d.append_page(f, &vec![i; d.page_size()]).unwrap();
        }
        let before = c.total().ios;
        let mut buf = Vec::new();
        d.read_run(f, 1, 3, &mut buf).unwrap();
        assert_eq!(c.total().ios - before, 3, "one I/O per page of the run");
        assert_eq!(buf.len(), 3 * d.page_size());
        for (i, chunk) in buf.chunks(d.page_size()).enumerate() {
            assert!(chunk.iter().all(|&b| b == (i + 1) as u8));
        }
        assert_eq!(d.metrics().counter("disk.reads"), 3);
    }

    #[test]
    fn read_run_stops_at_faulted_page_keeping_progress() {
        let (d, c) = disk();
        let f = d.create_file();
        for i in 0..4u8 {
            d.append_page(f, &vec![i; d.page_size()]).unwrap();
        }
        let before = c.total().ios;
        // Fail the 3rd charged read: pages 0 and 1 land in the buffer.
        d.install_fault_plan(FaultPlan::new().fail_nth_read(Some(f), 2));
        let mut buf = Vec::new();
        let err = d.read_run(f, 0, 4, &mut buf).unwrap_err();
        assert!(matches!(err, Error::DeviceFault { kind: FaultKind::Transient, page: 2, .. }));
        assert_eq!(buf.len(), 2 * d.page_size(), "progress before the fault is kept");
        assert_eq!(c.total().ios - before, 2, "the failed page charged nothing");
        // Resuming from the failure point completes the run.
        d.read_run(f, 2, 2, &mut buf).unwrap();
        assert_eq!(buf.len(), 4 * d.page_size());
        assert_eq!(c.total().ios - before, 4);
    }

    #[test]
    fn write_run_appends_each_page_charged() {
        let (d, c) = disk();
        let f = d.create_file();
        d.append_page(f, &vec![0xEE; d.page_size()]).unwrap();
        let mut run = Vec::new();
        for i in 0..3u8 {
            run.extend_from_slice(&vec![i; d.page_size()]);
        }
        let before = c.total().ios;
        let first = d.write_run(f, &run).unwrap();
        assert_eq!(first.page, 1, "run appended after existing pages");
        assert_eq!(c.total().ios - before, 3);
        assert_eq!(d.num_pages(f).unwrap(), 4);
        assert_eq!(d.read_page_free(PageId::new(f, 2)).unwrap()[0], 1);
        // Not-a-page-multiple is rejected without charges.
        assert!(d.write_run(f, &run[..10]).is_err());
        assert_eq!(c.total().ios - before, 3);
    }
}
