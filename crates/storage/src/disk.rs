//! The simulated disk.
//!
//! [`SimDisk`] stores pages in memory and charges one random-I/O operation
//! into the shared [`Cost`] ledger for every page read and every page write.
//! The paper prices sequential and random accesses identically (a single
//! `IO = 25 ms` constant), so the disk does not model seek locality — doing
//! so would make the engine *diverge* from the analytical model.
//!
//! Page allocation and file creation are free: they are bookkeeping, not
//! device traffic; a freshly allocated page only costs when it is written.

use std::cell::RefCell;
use std::rc::Rc;

use trijoin_common::{Cost, Error, Result, SystemParams};

/// Identifier of a simulated file (a growable array of pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Identifier of one page: a file plus a page number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: u32,
}

impl PageId {
    /// Convenience constructor.
    pub fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }
}

struct FileSlot {
    /// `None` once deleted.
    pages: Option<Vec<Box<[u8]>>>,
}

/// In-memory page store with paper-accurate I/O accounting.
pub struct SimDisk {
    files: RefCell<Vec<FileSlot>>,
    page_size: usize,
    cost: Cost,
    /// Remaining charged I/Os before the next one fails (fault injection
    /// for error-path tests); `None` = healthy.
    fault_in: RefCell<Option<u64>>,
}

/// Shared handle to a [`SimDisk`]; the simulator is single-threaded.
pub type Disk = Rc<SimDisk>;

impl SimDisk {
    /// Create a disk with the page size of `params`, charging into `cost`.
    pub fn new(params: &SystemParams, cost: Cost) -> Disk {
        Rc::new(SimDisk {
            files: RefCell::new(Vec::new()),
            page_size: params.page_size,
            cost,
            fault_in: RefCell::new(None),
        })
    }

    /// Arrange for the charged I/O operation `after` operations from now to
    /// fail with [`Error::Faulted`] (0 = the very next one). The fault
    /// fires once and clears; free (resident/test) accesses don't count.
    pub fn inject_fault(&self, after: u64) {
        *self.fault_in.borrow_mut() = Some(after);
    }

    /// Cancel a pending injected fault.
    pub fn clear_fault(&self) {
        *self.fault_in.borrow_mut() = None;
    }

    /// Returns `Err(Faulted)` when the pending fault fires on this
    /// operation; counts down otherwise.
    fn check_fault(&self) -> Result<()> {
        let mut fault = self.fault_in.borrow_mut();
        match fault.as_mut() {
            Some(0) => {
                *fault = None;
                Err(Error::Faulted)
            }
            Some(n) => {
                *n -= 1;
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The shared cost ledger this disk charges into.
    pub fn cost(&self) -> &Cost {
        &self.cost
    }

    /// Create a new, empty file.
    pub fn create_file(&self) -> FileId {
        let mut files = self.files.borrow_mut();
        files.push(FileSlot { pages: Some(Vec::new()) });
        FileId((files.len() - 1) as u32)
    }

    /// Delete a file, releasing its pages. Idempotent.
    pub fn delete_file(&self, file: FileId) {
        if let Some(slot) = self.files.borrow_mut().get_mut(file.0 as usize) {
            slot.pages = None;
        }
    }

    /// Number of pages currently allocated in `file`.
    pub fn num_pages(&self, file: FileId) -> Result<u32> {
        let files = self.files.borrow();
        let slot = files
            .get(file.0 as usize)
            .and_then(|s| s.pages.as_ref())
            .ok_or(Error::PageNotFound { file: file.0, page: 0 })?;
        Ok(slot.len() as u32)
    }

    /// Append a zeroed page to `file`. Free of I/O charge (bookkeeping).
    pub fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let mut files = self.files.borrow_mut();
        let slot = files
            .get_mut(file.0 as usize)
            .and_then(|s| s.pages.as_mut())
            .ok_or(Error::PageNotFound { file: file.0, page: 0 })?;
        slot.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(PageId { file, page: (slot.len() - 1) as u32 })
    }

    /// Read a page, charging one random I/O.
    pub fn read_page(&self, pid: PageId) -> Result<Vec<u8>> {
        self.check_fault()?;
        let files = self.files.borrow();
        let page = files
            .get(pid.file.0 as usize)
            .and_then(|s| s.pages.as_ref())
            .and_then(|pages| pages.get(pid.page as usize))
            .ok_or(Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        self.cost.io(1);
        Ok(page.to_vec())
    }

    /// Write a page, charging one random I/O. `data` must be exactly one
    /// page long.
    pub fn write_page(&self, pid: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(Error::Invariant(format!(
                "write_page: got {} bytes, page size is {}",
                data.len(),
                self.page_size
            )));
        }
        self.check_fault()?;
        let mut files = self.files.borrow_mut();
        let page = files
            .get_mut(pid.file.0 as usize)
            .and_then(|s| s.pages.as_mut())
            .and_then(|pages| pages.get_mut(pid.page as usize))
            .ok_or(Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        page.copy_from_slice(data);
        self.cost.io(1);
        Ok(())
    }

    /// Allocate a page and write it in one step (single I/O charge).
    pub fn append_page(&self, file: FileId, data: &[u8]) -> Result<PageId> {
        let pid = self.allocate_page(file)?;
        self.write_page(pid, data)?;
        Ok(pid)
    }

    /// Read a page **without** charging I/O. Reserved for pages the paper
    /// assumes permanently memory-resident (B⁺-tree roots) and for test
    /// assertions that must not perturb the ledger.
    pub fn read_page_free(&self, pid: PageId) -> Result<Vec<u8>> {
        let files = self.files.borrow();
        let page = files
            .get(pid.file.0 as usize)
            .and_then(|s| s.pages.as_ref())
            .and_then(|pages| pages.get(pid.page as usize))
            .ok_or(Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        Ok(page.to_vec())
    }

    /// Write a page **without** charging I/O (resident pages; see
    /// [`SimDisk::read_page_free`]).
    pub fn write_page_free(&self, pid: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(Error::Invariant("write_page_free: wrong length".into()));
        }
        let mut files = self.files.borrow_mut();
        let page = files
            .get_mut(pid.file.0 as usize)
            .and_then(|s| s.pages.as_mut())
            .and_then(|pages| pages.get_mut(pid.page as usize))
            .ok_or(Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        page.copy_from_slice(data);
        Ok(())
    }

    /// Total pages currently allocated across all live files (for tests and
    /// space reporting).
    pub fn total_pages(&self) -> u64 {
        self.files
            .borrow()
            .iter()
            .filter_map(|s| s.pages.as_ref())
            .map(|p| p.len() as u64)
            .sum()
    }
}

impl std::fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDisk")
            .field("page_size", &self.page_size)
            .field("total_pages", &self.total_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (Disk, Cost) {
        let cost = Cost::new();
        let params = SystemParams::paper_defaults();
        (SimDisk::new(&params, cost.clone()), cost)
    }

    #[test]
    fn read_write_roundtrip_charges_io() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        assert_eq!(c.total().ios, 0, "allocation is free");
        let mut data = vec![0u8; d.page_size()];
        data[0] = 0xAB;
        data[3999] = 0xCD;
        d.write_page(pid, &data).unwrap();
        assert_eq!(c.total().ios, 1);
        let back = d.read_page(pid).unwrap();
        assert_eq!(back, data);
        assert_eq!(c.total().ios, 2);
    }

    #[test]
    fn free_access_does_not_charge() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        let data = vec![7u8; d.page_size()];
        d.write_page_free(pid, &data).unwrap();
        assert_eq!(d.read_page_free(pid).unwrap(), data);
        assert_eq!(c.total().ios, 0);
    }

    #[test]
    fn missing_pages_error() {
        let (d, _c) = disk();
        let f = d.create_file();
        let missing = PageId::new(f, 5);
        assert!(matches!(d.read_page(missing), Err(Error::PageNotFound { .. })));
        assert!(matches!(
            d.read_page(PageId::new(FileId(99), 0)),
            Err(Error::PageNotFound { .. })
        ));
    }

    #[test]
    fn wrong_sized_write_rejected() {
        let (d, c) = disk();
        let f = d.create_file();
        let pid = d.allocate_page(f).unwrap();
        assert!(d.write_page(pid, &[0u8; 10]).is_err());
        assert_eq!(c.total().ios, 0, "failed write must not charge");
    }

    #[test]
    fn delete_file_releases_pages() {
        let (d, _c) = disk();
        let f = d.create_file();
        d.allocate_page(f).unwrap();
        d.allocate_page(f).unwrap();
        assert_eq!(d.total_pages(), 2);
        d.delete_file(f);
        assert_eq!(d.total_pages(), 0);
        assert!(d.num_pages(f).is_err());
        d.delete_file(f); // idempotent
    }

    #[test]
    fn files_are_independent() {
        let (d, _c) = disk();
        let f1 = d.create_file();
        let f2 = d.create_file();
        let p1 = d.allocate_page(f1).unwrap();
        let p2 = d.allocate_page(f2).unwrap();
        d.write_page(p1, &vec![1u8; d.page_size()]).unwrap();
        d.write_page(p2, &vec![2u8; d.page_size()]).unwrap();
        assert_eq!(d.read_page(p1).unwrap()[0], 1);
        assert_eq!(d.read_page(p2).unwrap()[0], 2);
        assert_eq!(d.num_pages(f1).unwrap(), 1);
    }

    #[test]
    fn append_page_is_one_io() {
        let (d, c) = disk();
        let f = d.create_file();
        let data = vec![9u8; d.page_size()];
        let pid = d.append_page(f, &data).unwrap();
        assert_eq!(pid.page, 0);
        assert_eq!(c.total().ios, 1);
        assert_eq!(d.append_page(f, &data).unwrap().page, 1);
    }
}
