//! Buffer pool with pin counts, clock eviction, and resident pages.
//!
//! The pool fronts the [`SimDisk`](crate::SimDisk): a hit costs nothing, a
//! miss charges the disk's normal read I/O, and evicting a dirty frame
//! charges a write. Pages marked *resident* (B⁺-tree roots — the paper's
//! Appendix assumes "the root node is permanently stored in main memory")
//! are pinned outside the frame array and never charge I/O.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based: the engine is single-threaded, and closures make the pin
//! lifetime explicit without fighting `RefCell` borrow lifetimes. Nested
//! access to *different* pages is fine; nested access to the *same* page is
//! a programming error and panics with a clear message.

use std::cell::RefCell;
use std::rc::Rc;

use trijoin_common::{CounterId, Error, FxHashMap, Result};

use crate::disk::{Disk, PageId};

struct Frame {
    pid: Option<PageId>,
    /// The page image, shared with the disk (`None` while lent out to a
    /// closure, and in empty frames). A miss clones the disk's `Rc` instead
    /// of copying the page; write access copies-on-write via
    /// [`Rc::make_mut`], and a dirty eviction hands the `Rc` back to the
    /// disk without copying either.
    data: Option<Rc<Vec<u8>>>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

struct Inner {
    frames: Vec<Frame>,
    map: FxHashMap<PageId, usize>,
    hand: usize,
    /// Last `(page, frame)` pair served: repeat hits on the same page —
    /// the dominant pattern in leaf scans — skip even the map lookup.
    /// Validated against the frame before use, so staleness is harmless.
    last: Option<(PageId, usize)>,
    resident: FxHashMap<PageId, Rc<Vec<u8>>>,
    resident_dirty: FxHashMap<PageId, bool>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time buffer-pool counters (replaces the old bare
/// `(hits, misses)` tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Accesses served from a frame (free).
    pub hits: u64,
    /// Accesses that had to read from disk (one charged I/O each).
    pub misses: u64,
    /// Frames whose previous page was displaced to make room.
    pub evictions: u64,
    /// Number of frames.
    pub capacity: usize,
    /// Pages pinned in the permanently-resident set.
    pub resident: usize,
}

impl PoolStats {
    /// Fraction of non-resident accesses served from a frame, in `[0, 1]`
    /// (0 when the pool has seen no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of misses that displaced a previously-cached page, in
    /// `[0, 1]` (0 when the pool has seen no misses).
    pub fn eviction_rate(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.evictions as f64 / self.misses as f64
        }
    }
}

/// A pin-counted clock-eviction buffer pool over a [`Disk`].
pub struct BufferPool {
    disk: Disk,
    inner: RefCell<Inner>,
    /// Interned handles for the pool's hot counters (see
    /// [`trijoin_common::Metrics::counter_handle`]).
    c_hits: CounterId,
    c_misses: CounterId,
    c_evictions: CounterId,
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk`.
    pub fn new(disk: Disk, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame { pid: None, data: None, dirty: false, pins: 0, referenced: false })
            .collect();
        let c_hits = disk.metrics().counter_handle("pool.hits");
        let c_misses = disk.metrics().counter_handle("pool.misses");
        let c_evictions = disk.metrics().counter_handle("pool.evictions");
        BufferPool {
            disk,
            inner: RefCell::new(Inner {
                frames,
                map: FxHashMap::default(),
                hand: 0,
                last: None,
                resident: FxHashMap::default(),
                resident_dirty: FxHashMap::default(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            c_hits,
            c_misses,
            c_evictions,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().frames.len()
    }

    /// Named counters for tests and reporting.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.borrow();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            capacity: inner.frames.len(),
            resident: inner.resident.len(),
        }
    }

    /// Load a page into the permanently-resident set, free of I/O charge.
    /// Subsequent reads and writes through the pool never charge for it.
    pub fn mark_resident(&self, pid: PageId) -> Result<()> {
        let data = self.disk.read_page_free(pid)?;
        let mut inner = self.inner.borrow_mut();
        inner.resident.insert(pid, Rc::new(data));
        inner.resident_dirty.insert(pid, false);
        self.disk.metrics().gauge_set("pool.resident", inner.resident.len() as f64);
        Ok(())
    }

    /// Drop a page from the resident set, writing it back (free) if dirty.
    pub fn unmark_resident(&self, pid: PageId) -> Result<()> {
        let mut inner = self.inner.borrow_mut();
        if let Some(data) = inner.resident.remove(&pid) {
            self.disk.metrics().gauge_set("pool.resident", inner.resident.len() as f64);
            if inner.resident_dirty.remove(&pid).unwrap_or(false) {
                drop(inner);
                self.disk.write_page_free(pid, &data)?;
            }
        }
        Ok(())
    }

    /// Read access to a page. Hit: free. Miss: one read I/O (plus one write
    /// I/O if a dirty frame must be evicted).
    pub fn with_page<T>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> T) -> Result<T> {
        self.access(pid, false, |image| f(image))
    }

    /// Write access to a page; the frame is marked dirty and flushed to disk
    /// on eviction or [`BufferPool::flush_all`]. If the frame still shares
    /// its image with the disk, the first write access copies it
    /// (copy-on-write) so the disk's stored page is never mutated in place.
    pub fn with_page_mut<T>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> T) -> Result<T> {
        self.access(pid, true, |image| f(Rc::make_mut(image).as_mut_slice()))
    }

    fn access<T>(
        &self,
        pid: PageId,
        write: bool,
        f: impl FnOnce(&mut Rc<Vec<u8>>) -> T,
    ) -> Result<T> {
        // Resident fast path: no charge either way.
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(mut data) = inner.resident.remove(&pid) {
                drop(inner);
                let out = f(&mut data);
                let mut inner = self.inner.borrow_mut();
                if write {
                    inner.resident_dirty.insert(pid, true);
                }
                inner.resident.insert(pid, data);
                return Ok(out);
            }
        }
        let idx = self.fetch_frame(pid)?;
        // Lend the image out without holding the RefCell borrow.
        let mut data = {
            let mut inner = self.inner.borrow_mut();
            let frame = &mut inner.frames[idx];
            frame.pins += 1;
            frame.referenced = true;
            match frame.data.take() {
                Some(data) => data,
                None => panic!("BufferPool: re-entrant access to page {pid:?}"),
            }
        };
        let out = f(&mut data);
        let mut inner = self.inner.borrow_mut();
        let frame = &mut inner.frames[idx];
        debug_assert_eq!(frame.pid, Some(pid), "frame stolen while pinned");
        frame.data = Some(data);
        frame.pins -= 1;
        if write {
            frame.dirty = true;
        }
        Ok(out)
    }

    /// Ensure `pid` occupies a frame; return its index.
    fn fetch_frame(&self, pid: PageId) -> Result<usize> {
        {
            let mut inner = self.inner.borrow_mut();
            // Repeat-hit fast path: same page as last time, frame still
            // holds it — no map lookup, no clock-state churn beyond the
            // hit count.
            if let Some((last_pid, idx)) = inner.last {
                if last_pid == pid && inner.frames[idx].pid == Some(pid) {
                    inner.hits += 1;
                    self.disk.metrics().incr_id(self.c_hits);
                    return Ok(idx);
                }
            }
            if let Some(&idx) = inner.map.get(&pid) {
                inner.hits += 1;
                inner.last = Some((pid, idx));
                self.disk.metrics().incr_id(self.c_hits);
                return Ok(idx);
            }
            inner.misses += 1;
            self.disk.metrics().incr_id(self.c_misses);
        }
        let victim = self.find_victim()?;
        // Evict the victim (flush if dirty), outside the clock loop.
        let flush_old = {
            let mut inner = self.inner.borrow_mut();
            let frame = &mut inner.frames[victim];
            let dirty = frame.dirty;
            let data = frame.data.take();
            let old = frame.pid.take();
            if let Some(old) = old {
                inner.map.remove(&old);
                inner.evictions += 1;
                self.disk.metrics().incr_id(self.c_evictions);
            }
            if dirty {
                old.zip(data)
            } else {
                None
            }
        };
        if let Some((old, data)) = flush_old {
            // Charges one write I/O; the disk stores the Rc itself, so a
            // dirty eviction moves a pointer, not a page.
            self.disk.write_page_rc(old, data)?;
        }
        // One charged read I/O; the frame shares the disk's page image.
        let image = self.disk.read_page_rc(pid)?;
        let mut inner = self.inner.borrow_mut();
        let frame = &mut inner.frames[victim];
        frame.pid = Some(pid);
        frame.data = Some(image);
        frame.dirty = false;
        frame.pins = 0;
        frame.referenced = true;
        inner.map.insert(pid, victim);
        inner.last = Some((pid, victim));
        Ok(victim)
    }

    /// Clock sweep: skip pinned frames, clear reference bits, pick the first
    /// unpinned unreferenced frame.
    fn find_victim(&self) -> Result<usize> {
        let mut inner = self.inner.borrow_mut();
        let n = inner.frames.len();
        // Free frame first.
        if let Some(idx) = inner.frames.iter().position(|fr| fr.pid.is_none()) {
            return Ok(idx);
        }
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[idx];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(idx);
        }
        Err(Error::BufferPoolExhausted)
    }

    /// Write every dirty frame (and dirty resident page) back to disk.
    /// Dirty frames charge one write I/O each; resident pages are free.
    pub fn flush_all(&self) -> Result<()> {
        let dirty: Vec<(PageId, Rc<Vec<u8>>)> = {
            let mut inner = self.inner.borrow_mut();
            let mut out = Vec::new();
            for frame in inner.frames.iter_mut() {
                if let (Some(pid), true, Some(data)) = (frame.pid, frame.dirty, &frame.data) {
                    out.push((pid, Rc::clone(data)));
                    frame.dirty = false;
                }
            }
            out
        };
        for (pid, data) in dirty {
            self.disk.write_page_rc(pid, data)?;
        }
        let resident: Vec<(PageId, Rc<Vec<u8>>)> = {
            let mut inner = self.inner.borrow_mut();
            let dirty_pids: Vec<PageId> =
                inner.resident_dirty.iter().filter(|&(_, &d)| d).map(|(&p, _)| p).collect();
            let mut out = Vec::new();
            for pid in dirty_pids {
                inner.resident_dirty.insert(pid, false);
                out.push((pid, Rc::clone(&inner.resident[&pid])));
            }
            out
        };
        for (pid, data) in resident {
            self.disk.write_page_free(pid, &data)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .field("resident", &stats.resident)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use trijoin_common::{Cost, SystemParams};

    fn setup(frames: usize, pages: u32) -> (Disk, BufferPool, Vec<PageId>, Cost) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost.clone());
        let f = disk.create_file();
        let pids: Vec<PageId> = (0..pages)
            .map(|i| {
                let pid = disk.allocate_page(f).unwrap();
                disk.write_page_free(pid, &vec![i as u8; 256]).unwrap();
                pid
            })
            .collect();
        let pool = BufferPool::new(disk.clone(), frames);
        (disk, pool, pids, cost)
    }

    #[test]
    fn hit_is_free_miss_charges() {
        let (_d, pool, pids, cost) = setup(4, 2);
        pool.with_page(pids[0], |d| assert_eq!(d[0], 0)).unwrap();
        assert_eq!(cost.total().ios, 1);
        pool.with_page(pids[0], |d| assert_eq!(d[0], 0)).unwrap();
        assert_eq!(cost.total().ios, 1, "hit must be free");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.capacity, 4);
    }

    #[test]
    fn eviction_flushes_dirty_frames() {
        let (disk, pool, pids, cost) = setup(2, 3);
        pool.with_page_mut(pids[0], |d| d[0] = 0xEE).unwrap(); // 1 read
        pool.with_page(pids[1], |_| ()).unwrap(); // 1 read
                                                  // Third page evicts page 0 (dirty): one write + one read.
        pool.with_page(pids[2], |_| ()).unwrap();
        assert_eq!(cost.total().ios, 4);
        assert_eq!(disk.read_page_free(pids[0]).unwrap()[0], 0xEE);
    }

    #[test]
    fn resident_pages_are_never_charged() {
        let (disk, pool, pids, cost) = setup(1, 3);
        pool.mark_resident(pids[0]).unwrap();
        for _ in 0..10 {
            pool.with_page(pids[0], |d| assert_eq!(d[0], 0)).unwrap();
        }
        pool.with_page_mut(pids[0], |d| d[0] = 0x55).unwrap();
        assert_eq!(cost.total().ios, 0);
        pool.flush_all().unwrap();
        assert_eq!(cost.total().ios, 0, "resident flush is free");
        assert_eq!(disk.read_page_free(pids[0]).unwrap()[0], 0x55);
    }

    #[test]
    fn flush_all_writes_dirty_only() {
        let (disk, pool, pids, cost) = setup(4, 3);
        pool.with_page_mut(pids[0], |d| d[1] = 1).unwrap();
        pool.with_page(pids[1], |_| ()).unwrap();
        let before = cost.total().ios; // 2 reads
        pool.flush_all().unwrap();
        assert_eq!(cost.total().ios, before + 1, "only the dirty frame is written");
        assert_eq!(disk.read_page_free(pids[0]).unwrap()[1], 1);
        // Second flush is a no-op.
        pool.flush_all().unwrap();
        assert_eq!(cost.total().ios, before + 1);
    }

    #[test]
    fn nested_access_to_different_pages_works() {
        let (_d, pool, pids, _cost) = setup(4, 2);
        let sum = pool
            .with_page(pids[0], |a| {
                let a0 = a[0];
                pool.with_page(pids[1], |b| a0 as u32 + b[0] as u32).unwrap()
            })
            .unwrap();
        assert_eq!(sum, 1);
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn nested_same_page_access_panics() {
        let (_d, pool, pids, _cost) = setup(4, 1);
        let _ = pool.with_page(pids[0], |_| {
            let _ = pool.with_page(pids[0], |_| ());
        });
    }

    #[test]
    fn clock_cycles_through_working_set_larger_than_pool() {
        let (_d, pool, pids, _cost) = setup(2, 6);
        // Two passes over 6 pages through a 2-frame pool: everything works,
        // data stays correct.
        for pass in 0..2 {
            for (i, pid) in pids.iter().enumerate() {
                pool.with_page(*pid, |d| assert_eq!(d[0], i as u8, "pass {pass}")).unwrap();
            }
        }
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 12);
        assert!(stats.misses >= 10, "2-frame pool cannot hold 6 pages");
        assert!(stats.evictions >= stats.misses - 2, "almost every miss displaced a page");
    }

    #[test]
    fn stats_and_metrics_agree() {
        let (disk, pool, pids, _cost) = setup(2, 3);
        pool.mark_resident(pids[2]).unwrap();
        for pid in &pids[..2] {
            pool.with_page(*pid, |_| ()).unwrap();
        }
        pool.with_page(pids[0], |_| ()).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.resident, 1);
        let m = disk.metrics();
        assert_eq!(m.counter("pool.hits"), stats.hits);
        assert_eq!(m.counter("pool.misses"), stats.misses);
        assert_eq!(m.counter("pool.evictions"), stats.evictions);
        assert_eq!(m.gauge("pool.resident"), Some(1.0));
    }

    #[test]
    fn all_frames_pinned_is_a_clean_error() {
        let (_d, pool, pids, _cost) = setup(1, 2);
        // Capacity 1: the outer access pins the only frame; fetching a
        // second page must fail with BufferPoolExhausted, not panic.
        let result = pool.with_page(pids[0], |_| pool.with_page(pids[1], |_| ()));
        match result {
            Ok(inner) => assert!(matches!(inner, Err(Error::BufferPoolExhausted))),
            Err(e) => panic!("outer access failed unexpectedly: {e}"),
        }
        // The pool still works afterwards.
        pool.with_page(pids[1], |d| assert_eq!(d[0], 1)).unwrap();
    }

    #[test]
    fn repeat_hits_use_fast_path_and_still_count() {
        let (disk, pool, pids, cost) = setup(2, 1);
        for _ in 0..5 {
            pool.with_page(pids[0], |d| assert_eq!(d[0], 0)).unwrap();
        }
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (4, 1));
        assert_eq!(disk.metrics().counter("pool.hits"), 4, "fast-path hits still count");
        assert_eq!(cost.total().ios, 1);
    }

    #[test]
    fn hit_and_eviction_rates() {
        let (_d, pool, pids, _cost) = setup(2, 3);
        assert_eq!(pool.stats().hit_rate(), 0.0, "empty pool: rate is 0, not NaN");
        assert_eq!(pool.stats().eviction_rate(), 0.0);
        pool.with_page(pids[0], |_| ()).unwrap(); // miss
        pool.with_page(pids[0], |_| ()).unwrap(); // hit
        pool.with_page(pids[1], |_| ()).unwrap(); // miss
        pool.with_page(pids[2], |_| ()).unwrap(); // miss + eviction
        let stats = pool.stats();
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12, "1 hit / 4 accesses");
        assert!((stats.eviction_rate() - 1.0 / 3.0).abs() < 1e-12, "1 eviction / 3 misses");
    }

    #[test]
    fn unmark_resident_writes_back_dirty() {
        let (disk, pool, pids, cost) = setup(2, 2);
        pool.mark_resident(pids[1]).unwrap();
        pool.with_page_mut(pids[1], |d| d[5] = 99).unwrap();
        pool.unmark_resident(pids[1]).unwrap();
        assert_eq!(disk.read_page_free(pids[1]).unwrap()[5], 99);
        assert_eq!(cost.total().ios, 0);
        // Now it is a normal page again: access charges.
        pool.with_page(pids[1], |_| ()).unwrap();
        assert_eq!(cost.total().ios, 1);
    }
}
