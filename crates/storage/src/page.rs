//! Slotted page layout for variable-length records.
//!
//! Classic textbook layout: a 4-byte header (`n_slots`, `free_end`), a slot
//! directory growing forward from the header, and record bodies growing
//! backward from the end of the page. Deleting a record leaves a tombstone
//! slot (so record ids of other records stay stable); the space is reclaimed
//! by an in-place compaction when a later insert needs it.
//!
//! All multi-byte fields are little-endian `u16`, which bounds the page size
//! at 64 KiB — far above the paper's 4000-byte pages.

use trijoin_common::{Error, Result};

const HEADER: usize = 4;
const SLOT: usize = 4;

/// An owned slotted page. Construct empty with [`SlottedPage::new`] or wrap
/// bytes read from disk with [`SlottedPage::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlottedPage {
    data: Vec<u8>,
}

impl SlottedPage {
    /// A fresh, empty page of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= HEADER + SLOT, "page too small");
        assert!(page_size <= u16::MAX as usize, "page too large for u16 offsets");
        let mut data = vec![0u8; page_size];
        write_u16(&mut data, 0, 0); // n_slots
        write_u16(&mut data, 2, page_size as u16); // free_end
        SlottedPage { data }
    }

    /// Wrap raw page bytes (e.g. read from [`crate::SimDisk`]), validating
    /// the header.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self> {
        if data.len() < HEADER + SLOT {
            return Err(Error::Corrupt("slotted page smaller than header".into()));
        }
        let page = SlottedPage { data };
        let n = page.num_slots() as usize;
        let free_end = page.free_end();
        if HEADER + n * SLOT > free_end || free_end > page.data.len() {
            return Err(Error::Corrupt(format!(
                "slotted page header inconsistent: {n} slots, free_end {free_end}"
            )));
        }
        Ok(page)
    }

    /// Borrow the raw bytes (for writing back to disk).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Take ownership of the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Total slots in the directory, including tombstones.
    pub fn num_slots(&self) -> u16 {
        read_u16(&self.data, 0)
    }

    /// Number of live (non-deleted) records.
    pub fn live_count(&self) -> usize {
        (0..self.num_slots()).filter(|&s| self.slot_len(s) != 0).count()
    }

    fn free_end(&self) -> usize {
        let raw = read_u16(&self.data, 2) as usize;
        // free_end == page_size is encoded as page_size (fits u16 for our
        // 4000-byte pages; the constructor rejects pages > 64 KiB).
        raw
    }

    fn set_free_end(&mut self, v: usize) {
        write_u16(&mut self.data, 2, v as u16);
    }

    fn set_num_slots(&mut self, v: u16) {
        write_u16(&mut self.data, 0, v);
    }

    fn slot_off(&self, slot: u16) -> usize {
        read_u16(&self.data, HEADER + slot as usize * SLOT) as usize
    }

    fn slot_len(&self, slot: u16) -> usize {
        read_u16(&self.data, HEADER + slot as usize * SLOT + 2) as usize
    }

    fn set_slot(&mut self, slot: u16, off: usize, len: usize) {
        write_u16(&mut self.data, HEADER + slot as usize * SLOT, off as u16);
        write_u16(&mut self.data, HEADER + slot as usize * SLOT + 2, len as u16);
    }

    /// Contiguous free bytes between the slot directory and the record area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() - (HEADER + self.num_slots() as usize * SLOT)
    }

    /// Free bytes available to an insert that may reuse a tombstone slot
    /// after compaction.
    pub fn usable_free(&self) -> usize {
        let live: usize = (0..self.num_slots()).map(|s| self.slot_len(s)).sum();
        let dir = HEADER + self.num_slots() as usize * SLOT;
        self.data.len() - dir - live
    }

    /// True if a record of `len` bytes fits (possibly after compaction).
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.first_tombstone().is_some() { 0 } else { SLOT };
        len + slot_cost <= self.usable_free()
    }

    fn first_tombstone(&self) -> Option<u16> {
        (0..self.num_slots()).find(|&s| self.slot_len(s) == 0)
    }

    /// Insert a record, returning its slot id. Compacts if fragmented.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.is_empty() {
            return Err(Error::Invariant("cannot store empty record".into()));
        }
        if !self.fits(record.len()) {
            return Err(Error::PageOverflow {
                needed: record.len(),
                available: self.usable_free(),
            });
        }
        let reuse = self.first_tombstone();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT };
        if self.contiguous_free() < record.len() + slot_cost {
            self.compact();
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.num_slots();
                self.set_num_slots(s + 1);
                s
            }
        };
        let new_end = self.free_end() - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        self.set_slot(slot, new_end, record.len());
        Ok(slot)
    }

    /// Read a live record.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.num_slots() || self.slot_len(slot) == 0 {
            return Err(Error::SlotNotFound { slot });
        }
        let off = self.slot_off(slot);
        let len = self.slot_len(slot);
        Ok(&self.data[off..off + len])
    }

    /// Delete a record, leaving a tombstone. Other slot ids are unaffected.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.num_slots() || self.slot_len(slot) == 0 {
            return Err(Error::SlotNotFound { slot });
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Overwrite a live record in place. Works for any new length that fits.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> Result<()> {
        if slot >= self.num_slots() || self.slot_len(slot) == 0 {
            return Err(Error::SlotNotFound { slot });
        }
        if record.len() <= self.slot_len(slot) {
            // Shrink/replace in place.
            let off = self.slot_off(slot);
            self.data[off..off + record.len()].copy_from_slice(record);
            self.set_slot(slot, off, record.len());
            return Ok(());
        }
        // Grow: delete then re-insert into the same slot id.
        let old_off = self.slot_off(slot);
        let old_len = self.slot_len(slot);
        self.set_slot(slot, 0, 0);
        if !self.fits(record.len()) {
            // Roll back.
            self.set_slot(slot, old_off, old_len);
            return Err(Error::PageOverflow {
                needed: record.len(),
                available: self.usable_free(),
            });
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let new_end = self.free_end() - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        self.set_slot(slot, new_end, record.len());
        Ok(())
    }

    /// Iterate live records as `(slot, bytes)` pairs, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.num_slots()).filter_map(move |s| {
            let len = self.slot_len(s);
            if len == 0 {
                None
            } else {
                let off = self.slot_off(s);
                Some((s, &self.data[off..off + len]))
            }
        })
    }

    /// Rewrite the record area contiguously, dropping dead space. Slot ids
    /// are preserved.
    fn compact(&mut self) {
        let mut live: Vec<(u16, Vec<u8>)> = self.iter().map(|(s, rec)| (s, rec.to_vec())).collect();
        // Place records from the page end downward, in descending slot order
        // (order is irrelevant for correctness; this keeps it deterministic).
        live.sort_by_key(|(s, _)| *s);
        let mut end = self.data.len();
        for (slot, rec) in live.into_iter().rev() {
            end -= rec.len();
            self.data[end..end + rec.len()].copy_from_slice(&rec);
            self.set_slot(slot, end, rec.len());
        }
        self.set_free_end(end);
    }
}

/// Walk the live records of a raw page image *without* taking ownership of
/// the bytes: the zero-copy counterpart of
/// `SlottedPage::from_bytes(..)?.iter()`, for callers that hold a borrowed
/// page (e.g. inside [`crate::SimDisk::read_page_with`]) and decode records
/// in place. Same slot order, same tombstone skipping; slot entries that
/// point outside the page fail as corrupt instead of panicking.
pub fn for_each_record(data: &[u8], mut f: impl FnMut(u16, &[u8])) -> Result<()> {
    if data.len() < HEADER + SLOT {
        return Err(Error::Corrupt("slotted page smaller than header".into()));
    }
    let n = read_u16(data, 0);
    let free_end = read_u16(data, 2) as usize;
    if HEADER + n as usize * SLOT > free_end || free_end > data.len() {
        return Err(Error::Corrupt(format!(
            "slotted page header inconsistent: {n} slots, free_end {free_end}"
        )));
    }
    for slot in 0..n {
        let len = read_u16(data, HEADER + slot as usize * SLOT + 2) as usize;
        if len == 0 {
            continue;
        }
        let off = read_u16(data, HEADER + slot as usize * SLOT) as usize;
        let rec = data
            .get(off..off + len)
            .ok_or_else(|| Error::Corrupt(format!("slot {slot} points outside the page")))?;
        f(slot, rec);
    }
    Ok(())
}

/// Borrow one live record out of a raw page image (the zero-copy
/// counterpart of `SlottedPage::from_bytes(..)?.get(slot)`).
pub fn record_in(data: &[u8], slot: u16) -> Result<&[u8]> {
    if data.len() < HEADER + SLOT {
        return Err(Error::Corrupt("slotted page smaller than header".into()));
    }
    let n = read_u16(data, 0);
    if slot >= n {
        return Err(Error::SlotNotFound { slot });
    }
    let len = read_u16(data, HEADER + slot as usize * SLOT + 2) as usize;
    if len == 0 {
        return Err(Error::SlotNotFound { slot });
    }
    let off = read_u16(data, HEADER + slot as usize * SLOT) as usize;
    data.get(off..off + len)
        .ok_or_else(|| Error::Corrupt(format!("slot {slot} points outside the page")))
}

fn read_u16(data: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(data[at..at + 2].try_into().unwrap())
}

fn write_u16(data: &mut [u8], at: usize, v: u16) {
    data[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = SlottedPage::new(4000);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        assert_eq!(p.get(a).unwrap(), b"alpha");
        assert_eq!(p.get(b).unwrap(), b"beta");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_leaves_stable_slots() {
        let mut p = SlottedPage::new(4000);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"bb").unwrap();
        let c = p.insert(b"ccc").unwrap();
        p.delete(b).unwrap();
        assert!(p.get(b).is_err());
        assert_eq!(p.get(a).unwrap(), b"a");
        assert_eq!(p.get(c).unwrap(), b"ccc");
        assert_eq!(p.live_count(), 2);
        // Double delete errors.
        assert!(p.delete(b).is_err());
    }

    #[test]
    fn tombstone_slot_is_reused() {
        let mut p = SlottedPage::new(4000);
        let _a = p.insert(b"one").unwrap();
        let b = p.insert(b"two").unwrap();
        p.delete(b).unwrap();
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, b, "tombstone slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"three");
    }

    #[test]
    fn fills_to_capacity_and_rejects_overflow() {
        let mut p = SlottedPage::new(256);
        let rec = [0xAAu8; 20];
        let mut count = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            count += 1;
        }
        assert!(count >= (256 - 4) / (20 + 4) - 1);
        let err = p.insert(&rec).unwrap_err();
        assert!(matches!(err, Error::PageOverflow { .. }));
        // All records still intact.
        assert_eq!(p.live_count(), count);
        for (_, r) in p.iter() {
            assert_eq!(r, &rec);
        }
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = SlottedPage::new(128);
        // Fill with 3 × 30-byte records: 4 + 3*4 + 90 = 106 <= 128.
        let s0 = p.insert(&[1u8; 30]).unwrap();
        let s1 = p.insert(&[2u8; 30]).unwrap();
        let s2 = p.insert(&[3u8; 30]).unwrap();
        // No room for a 40-byte record now.
        assert!(!p.fits(40));
        p.delete(s1).unwrap();
        // 30 bytes reclaimed + tombstone slot -> a 40-byte record fits after
        // compaction even though the hole is mid-page.
        assert!(p.fits(40));
        let s3 = p.insert(&[4u8; 40]).unwrap();
        assert_eq!(s3, s1);
        assert_eq!(p.get(s0).unwrap(), &[1u8; 30][..]);
        assert_eq!(p.get(s2).unwrap(), &[3u8; 30][..]);
        assert_eq!(p.get(s3).unwrap(), &[4u8; 40][..]);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new(256);
        let a = p.insert(&[7u8; 50]).unwrap();
        p.update(a, &[8u8; 20]).unwrap(); // shrink
        assert_eq!(p.get(a).unwrap(), &[8u8; 20][..]);
        p.update(a, &[9u8; 60]).unwrap(); // grow
        assert_eq!(p.get(a).unwrap(), &[9u8; 60][..]);
        // Grow beyond capacity fails but preserves the record.
        assert!(p.update(a, &[1u8; 300]).is_err());
        assert_eq!(p.get(a).unwrap(), &[9u8; 60][..]);
    }

    #[test]
    fn bytes_roundtrip_through_disk_format() {
        let mut p = SlottedPage::new(512);
        p.insert(b"persist me").unwrap();
        let raw = p.bytes().to_vec();
        let q = SlottedPage::from_bytes(raw).unwrap();
        assert_eq!(q, p);
        assert_eq!(q.iter().next().unwrap().1, b"persist me");
    }

    #[test]
    fn from_bytes_rejects_corrupt_header() {
        let mut raw = vec![0u8; 64];
        raw[0] = 200; // 200 slots cannot fit in 64 bytes
        raw[2..4].copy_from_slice(&(64u16).to_le_bytes());
        assert!(SlottedPage::from_bytes(raw).is_err());
        assert!(SlottedPage::from_bytes(vec![0u8; 2]).is_err());
    }

    #[test]
    fn iter_skips_tombstones_in_slot_order() {
        let mut p = SlottedPage::new(4000);
        let slots: Vec<u16> = (0..5).map(|i| p.insert(&[i as u8 + 1; 8]).unwrap()).collect();
        p.delete(slots[1]).unwrap();
        p.delete(slots[3]).unwrap();
        let seen: Vec<u16> = p.iter().map(|(s, _)| s).collect();
        assert_eq!(seen, vec![slots[0], slots[2], slots[4]]);
    }

    #[test]
    fn empty_record_rejected() {
        let mut p = SlottedPage::new(128);
        assert!(p.insert(b"").is_err());
    }

    #[test]
    fn borrowed_walkers_match_owned_page() {
        let mut p = SlottedPage::new(512);
        let slots: Vec<u16> = (0..4).map(|i| p.insert(&[i as u8 + 1; 6]).unwrap()).collect();
        p.delete(slots[2]).unwrap();
        let raw = p.bytes();
        let mut seen = Vec::new();
        for_each_record(raw, |s, rec| seen.push((s, rec.to_vec()))).unwrap();
        let owned: Vec<(u16, Vec<u8>)> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(seen, owned);
        assert_eq!(record_in(raw, slots[0]).unwrap(), p.get(slots[0]).unwrap());
        assert!(matches!(record_in(raw, slots[2]), Err(Error::SlotNotFound { .. })));
        assert!(matches!(record_in(raw, 99), Err(Error::SlotNotFound { .. })));
        assert!(for_each_record(&[0u8; 2], |_, _| ()).is_err());
    }
}
