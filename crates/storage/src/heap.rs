//! Heap files: append-oriented record files over slotted pages.
//!
//! Used for base-relation storage under the clustered B⁺-tree's leaves, for
//! sort runs, differential files (`iR`, `dR`), hash-join bucket spills, and
//! any other sequential working file. The paper charges one `IO` per page
//! for sequential reads and writes (its cost model has a single I/O
//! constant); [`HeapWriter`] therefore buffers one page in memory and emits
//! exactly one I/O per filled page, and [`HeapFile::scan`] reads each page
//! exactly once.

use trijoin_common::{Error, Result};

use crate::disk::{Disk, FileId, PageId};
use crate::page::SlottedPage;

/// Stable address of a record within a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page number within the heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// An existing heap file on a [`Disk`].
#[derive(Debug, Clone)]
pub struct HeapFile {
    disk: Disk,
    file: FileId,
}

impl HeapFile {
    /// Create a new, empty heap file.
    pub fn create(disk: &Disk) -> Self {
        HeapFile { disk: disk.clone(), file: disk.create_file() }
    }

    /// Wrap an existing file id as a heap file.
    pub fn open(disk: &Disk, file: FileId) -> Self {
        HeapFile { disk: disk.clone(), file }
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages(self.file).unwrap_or(0)
    }

    /// Fetch one record (one read I/O).
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        self.disk.read_page_with(PageId::new(self.file, rid.page), |raw| {
            Ok(crate::page::record_in(raw, rid.slot)?.to_vec())
        })
    }

    /// Delete one record (one read + one write I/O).
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let pid = PageId::new(self.file, rid.page);
        let raw = self.disk.read_page(pid)?;
        let mut page = SlottedPage::from_bytes(raw)?;
        page.delete(rid.slot)?;
        self.disk.write_page(pid, page.bytes())
    }

    /// Replace one record in place (one read + one write I/O). Fails if the
    /// new record does not fit on the page.
    pub fn update(&self, rid: RecordId, record: &[u8]) -> Result<()> {
        let pid = PageId::new(self.file, rid.page);
        let raw = self.disk.read_page(pid)?;
        let mut page = SlottedPage::from_bytes(raw)?;
        page.update(rid.slot, record)?;
        self.disk.write_page(pid, page.bytes())
    }

    /// Lazily scan every live record in file order, one read I/O per page.
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            heap: self.clone(),
            next_page: 0,
            current: Vec::new(),
            current_at: 0,
            total_pages: self.num_pages(),
        }
    }

    /// Drop the file's pages.
    pub fn destroy(self) {
        self.disk.delete_file(self.file);
    }

    /// Read one full page of records (one I/O): `(rid, bytes)` pairs.
    pub fn read_page_records(&self, page_no: u32) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_page_record(page_no, |rid, rec| out.push((rid, rec.to_vec())))?;
        Ok(out)
    }

    /// Read one full page (one I/O) and hand each live record to `f` as a
    /// *borrowed* slice — the zero-copy path run scans decode through. The
    /// closure runs under the disk borrow (see
    /// [`crate::SimDisk::read_page_with`]): decode, don't re-enter the disk.
    pub fn for_each_page_record(
        &self,
        page_no: u32,
        mut f: impl FnMut(RecordId, &[u8]),
    ) -> Result<()> {
        self.disk.read_page_with(PageId::new(self.file, page_no), |raw| {
            crate::page::for_each_record(raw, |slot, rec| f(RecordId { page: page_no, slot }, rec))
        })
    }
}

/// Lazy full-scan iterator over a [`HeapFile`].
pub struct HeapScan {
    heap: HeapFile,
    next_page: u32,
    current: Vec<(RecordId, Vec<u8>)>,
    current_at: usize,
    total_pages: u32,
}

impl Iterator for HeapScan {
    type Item = Result<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.current_at < self.current.len() {
                // Move the bytes out instead of cloning them; the drained
                // slot is dead until the next refill clears the buffer.
                let (rid, rec) = &mut self.current[self.current_at];
                let item = (*rid, std::mem::take(rec));
                self.current_at += 1;
                return Some(Ok(item));
            }
            if self.next_page >= self.total_pages {
                return None;
            }
            // Refill in place, reusing the spine of the previous page's
            // record vector (the record buffers themselves moved out above).
            self.current.clear();
            let page_no = self.next_page;
            let current = &mut self.current;
            match self
                .heap
                .for_each_page_record(page_no, |rid, rec| current.push((rid, rec.to_vec())))
            {
                Ok(()) => {
                    self.next_page += 1;
                    self.current_at = 0;
                }
                Err(e) => {
                    self.next_page = self.total_pages; // stop after error
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Buffered appender: accumulates one page in memory and writes each page
/// with exactly one I/O when it fills (or on [`HeapWriter::finish`]).
pub struct HeapWriter {
    disk: Disk,
    file: FileId,
    current: SlottedPage,
    page_no: u32,
    records: u64,
}

impl HeapWriter {
    /// Start writing a brand-new heap file.
    pub fn create(disk: &Disk) -> Self {
        let file = disk.create_file();
        HeapWriter {
            disk: disk.clone(),
            file,
            current: SlottedPage::new(disk.page_size()),
            page_no: 0,
            records: 0,
        }
    }

    /// Append a record, returning its future [`RecordId`].
    pub fn add(&mut self, record: &[u8]) -> Result<RecordId> {
        if !self.current.fits(record.len()) {
            if self.current.live_count() == 0 {
                return Err(Error::PageOverflow {
                    needed: record.len(),
                    available: self.disk.page_size(),
                });
            }
            self.flush_current()?;
        }
        let slot = self.current.insert(record)?;
        self.records += 1;
        Ok(RecordId { page: self.page_no, slot })
    }

    /// Append a record keeping at most `per_page` records per page — used to
    /// reproduce the paper's occupancy-based packing (`n_R` tuples/page).
    pub fn add_with_cap(&mut self, record: &[u8], per_page: usize) -> Result<RecordId> {
        if self.current.live_count() >= per_page {
            self.flush_current()?;
        }
        self.add(record)
    }

    fn flush_current(&mut self) -> Result<()> {
        let page = std::mem::replace(&mut self.current, SlottedPage::new(self.disk.page_size()));
        self.disk.append_page(self.file, page.bytes())?;
        self.page_no += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush the trailing partial page and return the finished [`HeapFile`].
    pub fn finish(mut self) -> Result<HeapFile> {
        if self.current.live_count() > 0 {
            self.flush_current()?;
        }
        Ok(HeapFile::open(&self.disk, self.file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use trijoin_common::{Cost, SystemParams};

    fn disk() -> (Disk, Cost) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        (SimDisk::new(&params, cost.clone()), cost)
    }

    #[test]
    fn writer_emits_one_io_per_page() {
        let (d, c) = disk();
        let mut w = HeapWriter::create(&d);
        // 20-byte records + 4-byte slots: 10 per 256-byte page (header 4).
        for i in 0..25u8 {
            w.add(&[i; 20]).unwrap();
        }
        let heap = w.finish().unwrap();
        assert_eq!(heap.num_pages(), 3);
        assert_eq!(c.total().ios, 3, "3 page writes, no read-modify-write");
    }

    #[test]
    fn scan_reads_each_page_once_in_order() {
        let (d, c) = disk();
        let mut w = HeapWriter::create(&d);
        for i in 0..30u8 {
            w.add(&[i; 20]).unwrap();
        }
        let heap = w.finish().unwrap();
        let write_ios = c.total().ios;
        let recs: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(recs.len(), 30);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r[0], i as u8, "scan must preserve append order");
        }
        assert_eq!(c.total().ios - write_ios, heap.num_pages() as u64);
    }

    #[test]
    fn get_update_delete_roundtrip() {
        let (d, _c) = disk();
        let mut w = HeapWriter::create(&d);
        let rid0 = w.add(b"first-record").unwrap();
        let rid1 = w.add(b"second-record").unwrap();
        let heap = w.finish().unwrap();
        assert_eq!(heap.get(rid0).unwrap(), b"first-record");
        heap.update(rid1, b"SECOND").unwrap();
        assert_eq!(heap.get(rid1).unwrap(), b"SECOND");
        heap.delete(rid0).unwrap();
        assert!(heap.get(rid0).is_err());
        let live: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(live, vec![b"SECOND".to_vec()]);
    }

    #[test]
    fn per_page_cap_reproduces_occupancy_packing() {
        let (d, _c) = disk();
        let mut w = HeapWriter::create(&d);
        for i in 0..10u8 {
            w.add_with_cap(&[i; 8], 4).unwrap();
        }
        let heap = w.finish().unwrap();
        assert_eq!(heap.num_pages(), 3); // 4 + 4 + 2
        let counts: Vec<usize> = (0..3).map(|p| heap.read_page_records(p).unwrap().len()).collect();
        assert_eq!(counts, vec![4, 4, 2]);
    }

    #[test]
    fn oversized_record_rejected() {
        let (d, _c) = disk();
        let mut w = HeapWriter::create(&d);
        assert!(w.add(&[0u8; 300]).is_err());
        // Writer still usable afterwards.
        w.add(&[1u8; 20]).unwrap();
        let heap = w.finish().unwrap();
        assert_eq!(heap.scan().count(), 1);
    }

    #[test]
    fn empty_file_scans_empty() {
        let (d, c) = disk();
        let heap = HeapWriter::create(&d).finish().unwrap();
        assert_eq!(heap.num_pages(), 0);
        assert_eq!(heap.scan().count(), 0);
        assert_eq!(c.total().ios, 0);
    }

    #[test]
    fn record_ids_from_writer_are_valid_after_finish() {
        let (d, _c) = disk();
        let mut w = HeapWriter::create(&d);
        let rids: Vec<RecordId> = (0..15u8).map(|i| w.add(&[i; 20]).unwrap()).collect();
        let heap = w.finish().unwrap();
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(heap.get(*rid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn destroy_releases_pages() {
        let (d, _c) = disk();
        let mut w = HeapWriter::create(&d);
        w.add(&[1u8; 20]).unwrap();
        let heap = w.finish().unwrap();
        assert_eq!(d.total_pages(), 1);
        heap.destroy();
        assert_eq!(d.total_pages(), 0);
    }
}
