//! Pluggable page-store backends under [`crate::SimDisk`].
//!
//! [`StorageBackend`] is the *raw medium*: create/delete files, allocate
//! pages, move page images. Everything the simulator layers on top —
//! fault gates, damage marks, the cost ledger, metrics — stays in
//! `SimDisk`, so the golden ledgers are byte-identical whichever backend
//! is plugged in, and an installed `FaultPlan` composes with all of them.
//!
//! Two media live here:
//!
//! * [`MemBackend`] — the original in-memory store (reference-counted
//!   page images, copy-on-write sharing with the buffer pool). This is
//!   what `SimDisk::new` uses; nothing observable changed.
//! * [`FileBackend`] — real `std::fs` files, one per [`FileId`], still
//!   *charged* on the simulated constants (the ledger is the paper's
//!   model, not the host's SSD). Every syscall result is mapped through
//!   [`Error::io`]; the backend never panics on OS failures.
//!
//! The write-ahead-logging [`crate::wal::DurableBackend`] wraps a
//! [`FileBackend`] and adds atomic commit on top of this trait.

use std::cell::RefCell;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use trijoin_common::{Error, Result};

use crate::disk::{FileId, PageId};

/// What one page write carries: borrowed bytes (the backend copies) or a
/// shared image (an in-memory backend may store the `Rc` itself — the
/// zero-copy path `SimDisk::write_page_rc` rides on).
#[derive(Debug, Clone, Copy)]
pub enum PageWrite<'a> {
    /// Plain bytes; the backend must copy them.
    Borrowed(&'a [u8]),
    /// A shared image; in-memory backends may adopt the `Rc`.
    Shared(&'a Rc<Vec<u8>>),
}

impl<'a> PageWrite<'a> {
    /// The page bytes, whichever form they arrived in.
    pub fn bytes(&self) -> &'a [u8] {
        match self {
            PageWrite::Borrowed(b) => b,
            PageWrite::Shared(rc) => rc.as_slice(),
        }
    }

    /// An owned shared image (clones the `Rc`, or copies borrowed bytes).
    pub fn to_rc(&self) -> Rc<Vec<u8>> {
        match self {
            PageWrite::Borrowed(b) => Rc::new(b.to_vec()),
            PageWrite::Shared(rc) => Rc::clone(rc),
        }
    }
}

/// How durable a commit must be before it returns.
///
/// * [`Durability::Barrier`] — the classic contract: the sealed frame
///   group (and every deferred group buffered before it) is written and
///   fsynced before `commit` returns. Survives any crash.
/// * [`Durability::Deferred`] — group commit: the sealed frame group is
///   appended to the in-memory log buffer only. A later barrier (an
///   explicit `Barrier` commit, a checkpoint, or a serve-side seal)
///   flushes and fsyncs every buffered group at once. A crash before
///   that barrier rolls the deferred commits back — recovery replays a
///   *prefix* of sealed groups, never a mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Durability {
    /// Fsync this commit (and all deferred ones) before returning.
    #[default]
    Barrier,
    /// Append the sealed group to the log buffer; fsync later.
    Deferred,
}

/// What a durable backend's commit reports back for `wal.*` accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Page-image frames appended to the log by this commit.
    pub frames: u64,
    /// Log bytes appended (frames plus the commit frame).
    pub bytes: u64,
    /// Overlay pages dropped because their bytes equal the committed
    /// image (skip-clean framing).
    pub frames_skipped: u64,
    /// Fsyncs issued by this commit (0 under [`Durability::Deferred`]).
    pub fsyncs: u64,
}

/// What startup recovery reports back for `wal.*` accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed page-image frames replayed into the data files.
    pub frames: u64,
    /// Commit records replayed.
    pub commits: u64,
    /// Torn-tail bytes discarded (log bytes past the last good commit).
    pub torn_bytes: u64,
}

/// What a checkpoint reports back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Log bytes released by truncation.
    pub truncated_bytes: u64,
}

/// Crash sabotage armed on the *next* commit — the simulation harness's
/// way of dying at interesting points inside the commit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitSabotage {
    /// Flush only a byte prefix of the log batch (no commit frame
    /// reaches the medium): the crash leaves a torn log tail that
    /// recovery must detect and truncate. The commit itself fails.
    TornWal,
    /// Flush and sync the full log batch, then skip applying the images
    /// to the data files: the commit *is* durable, and recovery must
    /// redo it from the log.
    SkipApply,
}

/// A raw page store. Single-threaded, interior-mutable (`&self`), shaped
/// exactly like the storage half of the original `SimDisk`:
///
/// * files are growable page arrays addressed by dense [`FileId`]s;
/// * page allocation is bookkeeping (no content written);
/// * out-of-range access is [`Error::PageNotFound`];
/// * deleting a file is idempotent and frees its pages.
///
/// The trait is *not* where faults or charges live — `SimDisk` gates and
/// charges every operation before delegating here.
pub trait StorageBackend {
    /// Create a new, empty file (infallible bookkeeping; a file-based
    /// backend materializes the OS file lazily, surfacing any OS error
    /// on the first real access).
    fn create_file(&self) -> FileId;

    /// Delete a file, releasing its pages. Idempotent; unknown ids are
    /// ignored.
    fn delete_file(&self, file: FileId);

    /// Number of file slots ever created (deleted slots included) — the
    /// id space the simulator interns per-file counters over.
    fn file_count(&self) -> u32;

    /// Pages currently allocated in `file`.
    fn num_pages(&self, file: FileId) -> Result<u32>;

    /// Append a zeroed page to `file`.
    fn allocate_page(&self, file: FileId) -> Result<PageId>;

    /// Read one page as a shared image.
    fn read_page(&self, pid: PageId) -> Result<Rc<Vec<u8>>>;

    /// Write one page. The caller (`SimDisk`) has already validated the
    /// length against the page size.
    fn write_page(&self, pid: PageId, data: PageWrite<'_>) -> Result<()>;

    /// Total pages across all live files.
    fn total_pages(&self) -> u64;

    /// True when the backend runs a write-ahead log (enables the
    /// `wal.*` observability surface and the commit/checkpoint verbs).
    fn wal_enabled(&self) -> bool {
        false
    }

    /// Current log length in bytes (0 without a WAL).
    fn wal_len_bytes(&self) -> u64 {
        0
    }

    /// Make everything written so far durable and atomic: encode the
    /// dirty pages as one sealed frame group and append it to the log.
    /// Under [`Durability::Barrier`] the group (plus any deferred
    /// groups) is flushed and fsynced before returning; under
    /// [`Durability::Deferred`] it stays in the log buffer until the
    /// next barrier. Images are *not* applied to the data files here —
    /// a checkpoint does that off the hot path. No-op without a WAL.
    fn commit(&self, _durability: Durability) -> Result<CommitStats> {
        Ok(CommitStats::default())
    }

    /// The cheap, frequent half of a checkpoint: seal any buffered
    /// deferred groups (one log fsync — the log must always cover
    /// every image the data files may hold) and write the committed
    /// backlog into the data files *without* syncing them or
    /// truncating the log. A crash at any point replays the intact
    /// log to the same state, so this bounds the apply backlog and
    /// the group-commit buffer at a fraction of a full checkpoint's
    /// cost. Returns `(pages_applied, log_fsyncs)`. No-op without a
    /// WAL.
    fn apply_backlog(&self) -> Result<(u64, u64)> {
        Ok((0, 0))
    }

    /// Bound the log: seal stragglers, apply committed images to the
    /// data files, sync them, truncate the log. No-op without a WAL.
    fn checkpoint(&self) -> Result<CheckpointStats> {
        Ok(CheckpointStats::default())
    }

    /// Committed page images not yet applied to the data files (the
    /// backlog the next checkpoint will drain). 0 without a WAL.
    fn wal_apply_lag(&self) -> u64 {
        0
    }

    /// Startup-recovery stats, consumed once by the simulator for
    /// `wal.*` metrics (None when no recovery ran).
    fn take_recovery_stats(&self) -> Option<RecoveryStats> {
        None
    }

    /// Arm a crash inside the next commit (simulation harness only).
    fn sabotage_next_commit(&self, _mode: CommitSabotage) {}
}

// ---------------------------------------------------------------------
// In-memory backend (the original SimDisk storage).
// ---------------------------------------------------------------------

/// One file's pages, reference-counted so the buffer pool can share
/// images with the disk; writers copy-on-write.
type FilePages = Vec<Rc<Vec<u8>>>;

/// The original in-memory page store: pages are reference-counted so the
/// buffer pool can share images with the disk; writers copy-on-write.
#[derive(Default)]
pub struct MemBackend {
    /// `None` once deleted.
    files: RefCell<Vec<Option<FilePages>>>,
    page_size: usize,
}

impl MemBackend {
    /// An empty in-memory store for `page_size`-byte pages.
    pub fn new(page_size: usize) -> Self {
        MemBackend { files: RefCell::new(Vec::new()), page_size }
    }
}

impl StorageBackend for MemBackend {
    fn create_file(&self) -> FileId {
        let mut files = self.files.borrow_mut();
        files.push(Some(Vec::new()));
        FileId((files.len() - 1) as u32)
    }

    fn delete_file(&self, file: FileId) {
        if let Some(slot) = self.files.borrow_mut().get_mut(file.0 as usize) {
            *slot = None;
        }
    }

    fn file_count(&self) -> u32 {
        self.files.borrow().len() as u32
    }

    fn num_pages(&self, file: FileId) -> Result<u32> {
        let files = self.files.borrow();
        let pages = files
            .get(file.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(Error::PageNotFound { file: file.0, page: 0 })?;
        Ok(pages.len() as u32)
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let mut files = self.files.borrow_mut();
        let pages = files
            .get_mut(file.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(Error::PageNotFound { file: file.0, page: 0 })?;
        pages.push(Rc::new(vec![0u8; self.page_size]));
        Ok(PageId { file, page: (pages.len() - 1) as u32 })
    }

    fn read_page(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        let files = self.files.borrow();
        let page = files
            .get(pid.file.0 as usize)
            .and_then(|s| s.as_ref())
            .and_then(|pages| pages.get(pid.page as usize))
            .ok_or(Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        Ok(Rc::clone(page))
    }

    fn write_page(&self, pid: PageId, data: PageWrite<'_>) -> Result<()> {
        let mut files = self.files.borrow_mut();
        let page = files
            .get_mut(pid.file.0 as usize)
            .and_then(|s| s.as_mut())
            .and_then(|pages| pages.get_mut(pid.page as usize))
            .ok_or(Error::PageNotFound { file: pid.file.0, page: pid.page })?;
        match data {
            // Adopt the shared image (zero copy).
            PageWrite::Shared(rc) => *page = Rc::clone(rc),
            // Copy-on-write into the existing image.
            PageWrite::Borrowed(b) => Rc::make_mut(page).copy_from_slice(b),
        }
        Ok(())
    }

    fn total_pages(&self) -> u64 {
        self.files.borrow().iter().filter_map(|s| s.as_ref()).map(|p| p.len() as u64).sum()
    }
}

// ---------------------------------------------------------------------
// Real-file backend.
// ---------------------------------------------------------------------

/// One live file's state: the lazily opened OS handle and the page count
/// (the in-memory count is authoritative; the OS file is the medium).
struct FileState {
    /// `None` until the first access that needs the OS file.
    handle: Option<fs::File>,
    pages: u32,
}

/// A page store over real `std::fs` files: `f<N>.pages` under a
/// directory, one per [`FileId`]. Reads and writes are positional
/// (`FileExt`), page-sized, and mapped through [`Error::io`] — a short
/// read, a permission failure, or a failed sync comes back as a typed
/// [`Error::Io`], never a panic. Durability ordering (when to sync what)
/// belongs to the [`crate::wal::DurableBackend`] wrapper; bare
/// `FileBackend` writes are write-through with no atomicity story.
pub struct FileBackend {
    dir: PathBuf,
    page_size: usize,
    files: RefCell<Vec<Option<FileState>>>,
}

impl FileBackend {
    /// Create a fresh backend rooted at `dir` (created if missing; any
    /// `f<N>.pages` files already there are removed — this is a *new*
    /// store, not a reopen).
    pub fn create(dir: &Path, page_size: usize) -> Result<Self> {
        fs::create_dir_all(dir).map_err(|e| Error::io(format!("create dir {dir:?}"), &e))?;
        for entry in
            fs::read_dir(dir).map_err(|e| Error::io(format!("list dir {dir:?}"), &e))?.flatten()
        {
            if Self::page_file_index(&entry.file_name().to_string_lossy()).is_some() {
                fs::remove_file(entry.path())
                    .map_err(|e| Error::io(format!("clear stale {:?}", entry.path()), &e))?;
            }
        }
        Ok(FileBackend { dir: dir.to_path_buf(), page_size, files: RefCell::new(Vec::new()) })
    }

    /// Reopen an existing store: every `f<N>.pages` file under `dir`
    /// becomes a live slot (its page count derived from its length);
    /// ids below the highest found that have no file are deleted slots.
    pub fn open(dir: &Path, page_size: usize) -> Result<Self> {
        let mut found: Vec<(u32, u64)> = Vec::new();
        for entry in
            fs::read_dir(dir).map_err(|e| Error::io(format!("list dir {dir:?}"), &e))?.flatten()
        {
            if let Some(idx) = Self::page_file_index(&entry.file_name().to_string_lossy()) {
                let len = entry
                    .metadata()
                    .map_err(|e| Error::io(format!("stat {:?}", entry.path()), &e))?
                    .len();
                found.push((idx, len));
            }
        }
        let slots = found.iter().map(|&(i, _)| i + 1).max().unwrap_or(0) as usize;
        let mut files: Vec<Option<FileState>> = (0..slots).map(|_| None).collect();
        for (idx, len) in found {
            files[idx as usize] =
                Some(FileState { handle: None, pages: (len / page_size as u64) as u32 });
        }
        Ok(FileBackend { dir: dir.to_path_buf(), page_size, files: RefCell::new(files) })
    }

    /// Parse `f<N>.pages` names.
    fn page_file_index(name: &str) -> Option<u32> {
        name.strip_prefix('f')?.strip_suffix(".pages")?.parse().ok()
    }

    fn path_of(&self, file: FileId) -> PathBuf {
        self.dir.join(format!("f{}.pages", file.0))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Run `f` with the lazily opened OS handle of `file`. The borrow of
    /// the slot table is held across the OS call; callbacks must not
    /// re-enter the backend (none do — they are single syscalls).
    fn with_handle<T>(
        &self,
        file: FileId,
        f: impl FnOnce(&fs::File, u32) -> Result<T>,
    ) -> Result<T> {
        let mut files = self.files.borrow_mut();
        let state = files
            .get_mut(file.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(Error::PageNotFound { file: file.0, page: 0 })?;
        if state.handle.is_none() {
            let path = self.path_of(file);
            let handle = fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .map_err(|e| Error::io(format!("open {path:?}"), &e))?;
            state.handle = Some(handle);
        }
        let pages = state.pages;
        f(state.handle.as_ref().expect("handle just opened"), pages)
    }

    /// Sync one file's data to the medium (used at checkpoint).
    /// `fdatasync`, not `fsync`: the data — and, per POSIX, any metadata
    /// needed to retrieve it, a grown size included — reaches the
    /// medium without paying for a journaled timestamp flush.
    pub(crate) fn sync_file(&self, file: FileId) -> Result<()> {
        self.with_handle(file, |h, _| {
            h.sync_data().map_err(|e| Error::io(format!("sync f{}", file.0), &e))
        })
    }

    /// Sync every live file (checkpoint / post-recovery barrier).
    pub(crate) fn sync_all_files(&self) -> Result<()> {
        let live: Vec<FileId> = {
            let files = self.files.borrow();
            (0..files.len() as u32).filter(|&i| files[i as usize].is_some()).map(FileId).collect()
        };
        for file in live {
            // Never-touched files have no OS handle and nothing to sync.
            let touched = self.path_of(file).exists();
            if touched {
                self.sync_file(file)?;
            }
        }
        Ok(())
    }

    /// Grow `file` to at least `pages` pages (recovery replay may land
    /// images past the current end of a shorter-than-logged file).
    /// Never shrinks.
    pub(crate) fn extend_to(&self, file: FileId, pages: u32) -> Result<()> {
        self.with_handle(file, |h, current| {
            if pages <= current {
                return Ok(());
            }
            h.set_len(pages as u64 * self.page_size as u64)
                .map_err(|e| Error::io(format!("extend f{} to {pages} pages", file.0), &e))
        })?;
        let mut files = self.files.borrow_mut();
        if let Some(Some(state)) = files.get_mut(file.0 as usize) {
            state.pages = state.pages.max(pages);
        }
        Ok(())
    }

    /// Recovery replay entry: make sure `file` has a live slot (a logged
    /// file whose OS file vanished is recreated empty) before images are
    /// written into it.
    pub(crate) fn ensure_file(&self, file: FileId) {
        let mut files = self.files.borrow_mut();
        while files.len() <= file.0 as usize {
            files.push(None);
        }
        if files[file.0 as usize].is_none() {
            files[file.0 as usize] = Some(FileState { handle: None, pages: 0 });
        }
    }
}

impl StorageBackend for FileBackend {
    fn create_file(&self) -> FileId {
        let mut files = self.files.borrow_mut();
        files.push(Some(FileState { handle: None, pages: 0 }));
        FileId((files.len() - 1) as u32)
    }

    fn delete_file(&self, file: FileId) {
        if let Some(slot) = self.files.borrow_mut().get_mut(file.0 as usize) {
            *slot = None;
        }
        // Best-effort removal of the medium; the in-memory slot table is
        // authoritative for liveness, so a failed unlink cannot corrupt
        // reads (the slot is already gone).
        let _ = fs::remove_file(self.path_of(file));
    }

    fn file_count(&self) -> u32 {
        self.files.borrow().len() as u32
    }

    fn num_pages(&self, file: FileId) -> Result<u32> {
        let files = self.files.borrow();
        let state = files
            .get(file.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(Error::PageNotFound { file: file.0, page: 0 })?;
        Ok(state.pages)
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let page = self.with_handle(file, |h, pages| {
            h.set_len((pages as u64 + 1) * self.page_size as u64)
                .map_err(|e| Error::io(format!("allocate f{} page {pages}", file.0), &e))?;
            Ok(pages)
        })?;
        let mut files = self.files.borrow_mut();
        if let Some(Some(state)) = files.get_mut(file.0 as usize) {
            state.pages = page + 1;
        }
        Ok(PageId { file, page })
    }

    fn read_page(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; self.page_size];
        self.with_handle(pid.file, |h, pages| {
            if pid.page >= pages {
                return Err(Error::PageNotFound { file: pid.file.0, page: pid.page });
            }
            let off = pid.page as u64 * self.page_size as u64;
            let op = || format!("read f{} page {}", pid.file.0, pid.page);
            h.read_exact_at(&mut buf, off).map_err(|e| match e.kind() {
                // Fewer bytes on the medium than the page the slot table
                // promised: the distinguished short-read failure.
                io::ErrorKind::UnexpectedEof => Error::io_kind(op(), "short read"),
                _ => Error::io(op(), &e),
            })
        })?;
        Ok(Rc::new(buf))
    }

    fn write_page(&self, pid: PageId, data: PageWrite<'_>) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.with_handle(pid.file, |h, pages| {
            if pid.page >= pages {
                return Err(Error::PageNotFound { file: pid.file.0, page: pid.page });
            }
            let off = pid.page as u64 * self.page_size as u64;
            h.write_all_at(data.bytes(), off)
                .map_err(|e| Error::io(format!("write f{} page {}", pid.file.0, pid.page), &e))
        })
    }

    fn total_pages(&self) -> u64 {
        self.files.borrow().iter().filter_map(|s| s.as_ref()).map(|f| f.pages as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("trijoin-backend-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const PS: usize = 256;

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = tmp("roundtrip");
        let b = FileBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        assert_eq!(b.read_page(pid).unwrap().as_slice(), &[0u8; PS], "fresh page is zeroed");
        let data = vec![0xA7u8; PS];
        b.write_page(pid, PageWrite::Borrowed(&data)).unwrap();
        assert_eq!(b.read_page(pid).unwrap().as_slice(), data.as_slice());
        assert_eq!(b.num_pages(f).unwrap(), 1);
        assert_eq!(b.total_pages(), 1);
        drop(b);

        // Reopen rediscovers the file and its length.
        let b = FileBackend::open(&dir, PS).unwrap();
        assert_eq!(b.file_count(), 1);
        assert_eq!(b.num_pages(f).unwrap(), 1);
        assert_eq!(b.read_page(pid).unwrap().as_slice(), data.as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_missing_pages_and_delete() {
        let dir = tmp("missing");
        let b = FileBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        assert!(matches!(b.read_page(PageId::new(f, 3)), Err(Error::PageNotFound { page: 3, .. })));
        assert!(matches!(
            b.write_page(PageId::new(FileId(9), 0), PageWrite::Borrowed(&[0u8; PS])),
            Err(Error::PageNotFound { .. })
        ));
        b.allocate_page(f).unwrap();
        b.delete_file(f);
        b.delete_file(f); // idempotent
        assert!(b.num_pages(f).is_err());
        assert_eq!(b.total_pages(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_is_a_typed_io_error() {
        let dir = tmp("short-read");
        let b = FileBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&vec![1u8; PS])).unwrap();
        // Truncate the medium behind the backend's back: the slot table
        // still promises one page, the file now holds half of one.
        let victim = dir.join("f0.pages");
        let fh = fs::OpenOptions::new().write(true).open(&victim).unwrap();
        fh.set_len(PS as u64 / 2).unwrap();
        drop(fh);
        let err = b.read_page(pid).unwrap_err();
        assert_eq!(
            err,
            Error::Io { op: "read f0 page 0".into(), kind: "short read".into() },
            "truncated medium must surface as a typed short read"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn permission_denied_is_a_typed_io_error() {
        // Real chmod-based denial is unreliable under root, so the
        // contract is pinned at the mapping boundary every syscall path
        // goes through: a PermissionDenied io::Error maps to Error::Io
        // with the kind preserved, for both open-shaped and write-shaped
        // operations.
        let denied = io::Error::new(io::ErrorKind::PermissionDenied, "denied");
        let mapped = Error::io("open \"/protected/f0.pages\"", &denied);
        match &mapped {
            Error::Io { op, kind } => {
                assert!(op.contains("f0.pages"), "{op}");
                assert_eq!(kind, "PermissionDenied");
            }
            other => panic!("expected Error::Io, got {other:?}"),
        }
        assert!(!mapped.is_retryable() && !mapped.is_device_fault());
    }

    #[test]
    fn flush_failure_is_a_typed_io_error() {
        // A write against a read-only handle fails regardless of uid:
        // the handle itself lacks write access. This exercises the same
        // write_all_at -> Error::io funnel write_page uses.
        use std::os::unix::fs::FileExt;
        let dir = tmp("flush-fail");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f0.pages");
        fs::write(&path, vec![0u8; PS]).unwrap();
        let ro = fs::OpenOptions::new().read(true).open(&path).unwrap();
        let err = ro
            .write_all_at(&vec![1u8; PS], 0)
            .map_err(|e| Error::io("write f0 page 0", &e))
            .unwrap_err();
        match err {
            Error::Io { op, kind } => {
                assert_eq!(op, "write f0 page 0");
                assert!(!kind.is_empty());
            }
            other => panic!("expected Error::Io, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backend_matches_file_backend_semantics() {
        let dir = tmp("parity");
        let mem = MemBackend::new(PS);
        let file = FileBackend::create(&dir, PS).unwrap();
        let backends: [&dyn StorageBackend; 2] = [&mem, &file];
        for b in backends {
            let f = b.create_file();
            assert!(b.num_pages(FileId(99)).is_err());
            assert_eq!(b.num_pages(f).unwrap(), 0);
            let pid = b.allocate_page(f).unwrap();
            assert_eq!(b.read_page(pid).unwrap().as_slice(), &[0u8; PS]);
            let img = Rc::new(vec![5u8; PS]);
            b.write_page(pid, PageWrite::Shared(&img)).unwrap();
            assert_eq!(b.read_page(pid).unwrap().as_slice(), img.as_slice());
            assert_eq!(b.file_count(), 1);
            assert_eq!(b.total_pages(), 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
