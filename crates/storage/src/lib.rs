//! Storage substrate: simulated disk, slotted pages, buffer pool, heap files.
//!
//! The paper's evaluation is entirely in terms of *counts* of random page
//! I/Os and CPU primitives, weighted by 1989 device constants. [`SimDisk`]
//! is therefore an in-memory page store that charges one `IO` into the
//! shared [`Cost`](trijoin_common::Cost) ledger for every page read or
//! written — never a wall-clock sleep — which keeps experiments laptop-scale
//! and perfectly deterministic while preserving exactly the quantity the
//! paper reasons about.
//!
//! On top of the disk sit:
//! * [`page::SlottedPage`] — a classic slotted page layout for
//!   variable-length records;
//! * [`pool::BufferPool`] — a pin-counted clock-eviction buffer pool with
//!   support for *resident* pages (the paper assumes B⁺-tree roots are
//!   permanently memory-resident and charges no I/O for them);
//! * [`heap::HeapFile`] — an append-oriented record file with full scans,
//!   used for base relations, spill runs, and differential files.

pub mod backend;
pub mod disk;
pub mod heap;
pub mod page;
pub mod pool;
pub mod wal;

pub use backend::{
    CheckpointStats, CommitSabotage, CommitStats, Durability, FileBackend, MemBackend, PageWrite,
    RecoveryStats, StorageBackend,
};
pub use disk::{Disk, FaultPlan, FaultSpec, FileId, PageId, SimDisk};
pub use heap::{HeapFile, RecordId};
pub use page::SlottedPage;
pub use pool::{BufferPool, PoolStats};
pub use wal::{DurableBackend, Wal};
