//! Write-ahead logging: the durability sidecar over [`FileBackend`].
//!
//! [`DurableBackend`] wraps a real-file [`FileBackend`] with an
//! *apply-at-commit* protocol:
//!
//! * page writes land in an in-memory **overlay** (uncommitted state) —
//!   the data files on disk only ever hold committed images;
//! * [`StorageBackend::commit`] encodes every overlay page as a
//!   checksummed page-image frame, appends one **commit frame**, flushes
//!   and syncs the log in a single group write, then applies the images
//!   to the data files and clears the overlay;
//! * [`StorageBackend::checkpoint`] syncs the data files and truncates
//!   the log to zero — the log length is bounded by the work since the
//!   last checkpoint;
//! * [`DurableBackend::open`] runs **recovery**: scan the log, replay
//!   every frame group that is sealed by a valid commit frame (redo is
//!   idempotent — frames are full page images), and truncate whatever
//!   torn tail a mid-flush crash left behind; the store then checkpoints
//!   itself, so a second recovery is a no-op.
//!
//! File creation/deletion and page allocation pass straight through to
//! the inner backend: they are bookkeeping, and any stale files or tail
//! pages a crash leaves behind are unreachable — the catalog that names
//! live structures is itself a page file covered by the log.
//!
//! ## Frame format
//!
//! ```text
//! page frame    'P' | file u32 | page u32 | len u32 | data[len] | fnv64
//! commit frame  'C' | seq u64  | frames u32         |            fnv64
//! ```
//!
//! All integers little-endian; the trailing FNV-1a 64 checksum covers
//! every byte of the frame before it. A frame that fails to parse, fails
//! its checksum, or is not sealed by a commit frame is part of a torn
//! tail and is discarded by recovery.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use trijoin_common::{Error, Result};

use crate::backend::{
    CheckpointStats, CommitSabotage, CommitStats, FileBackend, PageWrite, RecoveryStats,
    StorageBackend,
};
use crate::disk::{FileId, PageId};

/// Frame tags.
const TAG_PAGE: u8 = b'P';
const TAG_COMMIT: u8 = b'C';

/// FNV-1a 64 — the frame checksum. Not cryptographic; it detects torn
/// and bit-rotted frames, which is all recovery needs.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append one page-image frame for `pid` to `buf`.
fn encode_page_frame(buf: &mut Vec<u8>, pid: PageId, data: &[u8]) {
    let start = buf.len();
    buf.push(TAG_PAGE);
    buf.extend_from_slice(&pid.file.0.to_le_bytes());
    buf.extend_from_slice(&pid.page.to_le_bytes());
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    buf.extend_from_slice(data);
    let sum = fnv64(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
}

/// Append one commit frame sealing `frames` page frames to `buf`.
fn encode_commit_frame(buf: &mut Vec<u8>, seq: u64, frames: u32) {
    let start = buf.len();
    buf.push(TAG_COMMIT);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&frames.to_le_bytes());
    let sum = fnv64(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
}

/// One decoded log record.
enum Frame {
    Page { pid: PageId, data: Vec<u8> },
    Commit { frames: u32 },
}

/// Decode the frame starting at `at`; `None` for a torn/corrupt tail.
/// Returns the frame and the offset just past it.
fn decode_frame(log: &[u8], at: usize) -> Option<(Frame, usize)> {
    let u32_at =
        |o: usize| -> Option<u32> { Some(u32::from_le_bytes(log.get(o..o + 4)?.try_into().ok()?)) };
    let u64_at =
        |o: usize| -> Option<u64> { Some(u64::from_le_bytes(log.get(o..o + 8)?.try_into().ok()?)) };
    match *log.get(at)? {
        TAG_PAGE => {
            let file = u32_at(at + 1)?;
            let page = u32_at(at + 5)?;
            let len = u32_at(at + 9)? as usize;
            let data_end = at.checked_add(13)?.checked_add(len)?;
            let data = log.get(at + 13..data_end)?;
            let sum = u64_at(data_end)?;
            if sum != fnv64(&log[at..data_end]) {
                return None;
            }
            let pid = PageId::new(FileId(file), page);
            Some((Frame::Page { pid, data: data.to_vec() }, data_end + 8))
        }
        TAG_COMMIT => {
            let frames = u32_at(at + 9)?;
            let sum = u64_at(at + 13)?;
            if sum != fnv64(&log[at..at + 13]) {
                return None;
            }
            Some((Frame::Commit { frames }, at + 21))
        }
        _ => None,
    }
}

/// A write-ahead log file: append-only batches, each sealed by a commit
/// frame, group-flushed with one write + one sync.
pub struct Wal {
    path: PathBuf,
    len: Cell<u64>,
    seq: Cell<u64>,
}

impl Wal {
    /// Name of the log file inside a store directory.
    pub const FILE_NAME: &'static str = "wal.log";

    /// Start a fresh (empty) log in `dir`.
    pub fn create(dir: &Path) -> Result<Wal> {
        let path = dir.join(Self::FILE_NAME);
        fs::write(&path, []).map_err(|e| Error::io(format!("create {path:?}"), &e))?;
        Ok(Wal { path, len: Cell::new(0), seq: Cell::new(0) })
    }

    /// Open the log in `dir` (created empty if absent).
    pub fn open(dir: &Path) -> Result<Wal> {
        let path = dir.join(Self::FILE_NAME);
        let len = match fs::metadata(&path) {
            Ok(m) => m.len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&path, []).map_err(|e| Error::io(format!("create {path:?}"), &e))?;
                0
            }
            Err(e) => return Err(Error::io(format!("stat {path:?}"), &e)),
        };
        Ok(Wal { path, len: Cell::new(len), seq: Cell::new(0) })
    }

    /// Current log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len.get()
    }

    /// Append `batch` (already encoded frames) and sync: the group
    /// flush. Returns the bytes appended.
    fn append_synced(&self, batch: &[u8]) -> Result<u64> {
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| Error::io(format!("open {:?}", self.path), &e))?;
        f.write_all(batch).map_err(|e| Error::io("append wal batch", &e))?;
        f.sync_all().map_err(|e| Error::io("sync wal", &e))?;
        self.len.set(self.len.get() + batch.len() as u64);
        Ok(batch.len() as u64)
    }

    /// Append only a strict byte prefix of `batch` *without* syncing —
    /// the simulated mid-flush crash that leaves a torn tail.
    fn append_torn(&self, batch: &[u8]) -> Result<()> {
        let keep = batch.len() / 2;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| Error::io(format!("open {:?}", self.path), &e))?;
        f.write_all(&batch[..keep]).map_err(|e| Error::io("append torn wal batch", &e))?;
        self.len.set(self.len.get() + keep as u64);
        Ok(())
    }

    /// Truncate the log to `len` bytes (recovery discarding a torn tail,
    /// or a checkpoint resetting it to zero) and sync the truncation.
    fn truncate_to(&self, len: u64) -> Result<()> {
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| Error::io(format!("open {:?}", self.path), &e))?;
        f.set_len(len).map_err(|e| Error::io("truncate wal", &e))?;
        f.sync_all().map_err(|e| Error::io("sync wal truncation", &e))?;
        self.len.set(len);
        Ok(())
    }

    /// Read the whole log (recovery scan input).
    fn read_all(&self) -> Result<Vec<u8>> {
        fs::read(&self.path).map_err(|e| Error::io(format!("read {:?}", self.path), &e))
    }
}

/// Uncommitted page images, keyed `(file, page)`. A `BTreeMap` so
/// commit encodes frames in a deterministic order.
type Overlay = BTreeMap<(u32, u32), Rc<Vec<u8>>>;

/// [`FileBackend`] plus a WAL: atomic, durable commits with crash
/// recovery. See the module docs for the protocol.
pub struct DurableBackend {
    inner: FileBackend,
    wal: Wal,
    overlay: RefCell<Overlay>,
    /// Stats from the recovery pass `open` ran, consumed once.
    recovery: Cell<Option<RecoveryStats>>,
    /// Armed crash for the next commit (simulation harness).
    sabotage: Cell<Option<CommitSabotage>>,
}

impl DurableBackend {
    /// Create a fresh durable store in `dir`.
    pub fn create(dir: &Path, page_size: usize) -> Result<DurableBackend> {
        let inner = FileBackend::create(dir, page_size)?;
        let wal = Wal::create(dir)?;
        Ok(DurableBackend {
            inner,
            wal,
            overlay: RefCell::new(BTreeMap::new()),
            recovery: Cell::new(None),
            sabotage: Cell::new(None),
        })
    }

    /// Reopen a durable store, running crash recovery: replay committed
    /// frame groups into the data files, discard any torn tail, sync,
    /// and truncate the log (so recovery is idempotent — running it
    /// again finds an empty log and changes nothing).
    pub fn open(dir: &Path, page_size: usize) -> Result<DurableBackend> {
        let inner = FileBackend::open(dir, page_size)?;
        let wal = Wal::open(dir)?;
        let log = wal.read_all()?;

        let mut stats = RecoveryStats::default();
        let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
        let mut at = 0usize;
        let mut good_end = 0usize;
        while at < log.len() {
            match decode_frame(&log, at) {
                Some((Frame::Page { pid, data }, next)) => {
                    pending.push((pid, data));
                    at = next;
                }
                Some((Frame::Commit { frames }, next)) => {
                    if frames as usize != pending.len() {
                        // A commit frame sealing the wrong number of
                        // frames is corruption; stop here.
                        break;
                    }
                    for (pid, data) in pending.drain(..) {
                        inner.ensure_file(pid.file);
                        inner.extend_to(pid.file, pid.page + 1)?;
                        inner.write_page(pid, PageWrite::Borrowed(&data))?;
                        stats.frames += 1;
                    }
                    stats.commits += 1;
                    at = next;
                    good_end = at;
                }
                None => break, // torn/corrupt tail
            }
        }
        stats.torn_bytes = (log.len() - good_end) as u64;

        // Make the replay durable, then bound the log: everything it
        // held is now in the data files.
        inner.sync_all_files()?;
        wal.truncate_to(0)?;
        let ran = stats.commits > 0 || stats.torn_bytes > 0;
        Ok(DurableBackend {
            inner,
            wal,
            overlay: RefCell::new(BTreeMap::new()),
            recovery: Cell::new(ran.then_some(stats)),
            sabotage: Cell::new(None),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.inner.dir()
    }

    /// Uncommitted pages currently buffered in the overlay (tests).
    pub fn overlay_pages(&self) -> usize {
        self.overlay.borrow().len()
    }
}

impl StorageBackend for DurableBackend {
    fn create_file(&self) -> FileId {
        self.inner.create_file()
    }

    fn delete_file(&self, file: FileId) {
        // Deletion passes through: only derived/scratch structures are
        // ever deleted at runtime, and the catalog never names them
        // across a crash boundary. Drop their uncommitted images too.
        self.overlay.borrow_mut().retain(|&(f, _), _| f != file.0);
        self.inner.delete_file(file);
    }

    fn file_count(&self) -> u32 {
        self.inner.file_count()
    }

    fn num_pages(&self, file: FileId) -> Result<u32> {
        self.inner.num_pages(file)
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        // Allocation is bookkeeping (a zeroed tail page): pass through.
        // A crash can leave allocated-but-uncommitted tail pages behind;
        // they are unreachable until a committed structure points at
        // them, so they are garbage, not corruption.
        self.inner.allocate_page(file)
    }

    fn read_page(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        if let Some(img) = self.overlay.borrow().get(&(pid.file.0, pid.page)) {
            // Serve uncommitted writes back to their writer — but only
            // for pages that still exist (delete_file purged its keys).
            return Ok(Rc::clone(img));
        }
        self.inner.read_page(pid)
    }

    fn write_page(&self, pid: PageId, data: PageWrite<'_>) -> Result<()> {
        // Validate against the inner store so out-of-range writes fail
        // exactly like they would without the overlay.
        let pages = self.inner.num_pages(pid.file)?;
        if pid.page >= pages {
            return Err(Error::PageNotFound { file: pid.file.0, page: pid.page });
        }
        self.overlay.borrow_mut().insert((pid.file.0, pid.page), data.to_rc());
        Ok(())
    }

    fn total_pages(&self) -> u64 {
        self.inner.total_pages()
    }

    fn wal_enabled(&self) -> bool {
        true
    }

    fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    fn commit(&self) -> Result<CommitStats> {
        if self.overlay.borrow().is_empty() {
            self.sabotage.set(None);
            return Ok(CommitStats::default());
        }
        // Encode the whole group: page frames in (file, page) order,
        // sealed by one commit frame.
        let mut batch = Vec::new();
        let frames = {
            let overlay = self.overlay.borrow();
            for (&(file, page), img) in overlay.iter() {
                encode_page_frame(&mut batch, PageId::new(FileId(file), page), img);
            }
            overlay.len() as u64
        };
        let seq = self.wal.seq.get() + 1;
        encode_commit_frame(&mut batch, seq, frames as u32);

        match self.sabotage.take() {
            Some(CommitSabotage::TornWal) => {
                // Die mid-flush: a byte prefix of the batch reaches the
                // log, no commit frame, nothing applied. The commit
                // fails, and the overlay dies with the "process".
                self.wal.append_torn(&batch)?;
                self.overlay.borrow_mut().clear();
                return Err(Error::io_kind("wal commit", "simulated crash during log flush"));
            }
            Some(CommitSabotage::SkipApply) => {
                // Die between the log sync and the data-file apply: the
                // commit IS durable; recovery must redo it. The overlay
                // dies with the "process".
                let bytes = self.wal.append_synced(&batch)?;
                self.wal.seq.set(seq);
                self.overlay.borrow_mut().clear();
                return Ok(CommitStats { frames, bytes });
            }
            None => {}
        }

        // A real I/O failure below leaves the overlay in place: nothing
        // is lost until the caller decides what to do with the error.
        let bytes = self.wal.append_synced(&batch)?;
        self.wal.seq.set(seq);
        let overlay = std::mem::take(&mut *self.overlay.borrow_mut());
        for (&(file, page), img) in &overlay {
            self.inner.write_page(PageId::new(FileId(file), page), PageWrite::Shared(img))?;
        }
        Ok(CommitStats { frames, bytes })
    }

    fn checkpoint(&self) -> Result<CheckpointStats> {
        // Flush any straggling uncommitted work first, then bound the
        // log: once the data files are synced the log is redundant.
        self.commit()?;
        self.inner.sync_all_files()?;
        let truncated = self.wal.len_bytes();
        self.wal.truncate_to(0)?;
        Ok(CheckpointStats { truncated_bytes: truncated })
    }

    fn take_recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery.take()
    }

    fn sabotage_next_commit(&self, mode: CommitSabotage) {
        self.sabotage.set(Some(mode));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 256;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("trijoin-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; PS]
    }

    #[test]
    fn frame_codec_roundtrip_and_checksum() {
        let mut buf = Vec::new();
        encode_page_frame(&mut buf, PageId::new(FileId(3), 7), &page(0xEE));
        encode_commit_frame(&mut buf, 1, 1);
        let (frame, next) = decode_frame(&buf, 0).unwrap();
        match frame {
            Frame::Page { pid, data } => {
                assert_eq!(pid, PageId::new(FileId(3), 7));
                assert_eq!(data, page(0xEE));
            }
            Frame::Commit { .. } => panic!("expected a page frame"),
        }
        let (frame, end) = decode_frame(&buf, next).unwrap();
        assert!(matches!(frame, Frame::Commit { frames: 1 }));
        assert_eq!(end, buf.len());

        // One flipped byte anywhere kills the frame.
        let mut bent = buf.clone();
        bent[20] ^= 0x40;
        assert!(decode_frame(&bent, 0).is_none());
        // A truncated frame is torn, not a panic.
        assert!(decode_frame(&buf[..buf.len() - 1], next).is_none());
        assert!(decode_frame(&buf[..5], 0).is_none());
    }

    #[test]
    fn uncommitted_writes_stay_out_of_the_data_files() {
        let dir = tmp("overlay");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0x11))).unwrap();
        // The writer reads its own write back...
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0x11).as_slice());
        assert_eq!(b.overlay_pages(), 1);
        // ...but the medium still holds the allocated zero page.
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), &[0u8; PS]);

        b.commit().unwrap();
        assert_eq!(b.overlay_pages(), 0);
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), page(0x11).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_commit_recovers_to_last_commit() {
        let dir = tmp("crash-mid-batch");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xAA))).unwrap();
        b.commit().unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xBB))).unwrap();
        drop(b); // crash: overlay (0xBB) dies with the process

        let b = DurableBackend::open(&dir, PS).unwrap();
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xAA).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_but_unapplied_batch_is_redone() {
        let dir = tmp("redo");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xCC))).unwrap();
        b.sabotage_next_commit(CommitSabotage::SkipApply);
        let stats = b.commit().unwrap();
        assert_eq!(stats.frames, 1, "the commit is durable");
        // The data file never saw the image...
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), &[0u8; PS]);
        drop(b);

        // ...recovery redoes it from the log.
        let b = DurableBackend::open(&dir, PS).unwrap();
        let stats = b.take_recovery_stats().expect("recovery ran");
        assert_eq!((stats.frames, stats.commits, stats.torn_bytes), (1, 1, 0));
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xCC).as_slice());
        assert_eq!(b.wal_len_bytes(), 0, "recovery bounds the log");

        // Idempotent double recovery: nothing left to replay.
        drop(b);
        let b = DurableBackend::open(&dir, PS).unwrap();
        assert!(b.take_recovery_stats().is_none());
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xCC).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_is_truncated_not_replayed() {
        let dir = tmp("torn-tail");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let p0 = b.allocate_page(f).unwrap();
        let p1 = b.allocate_page(f).unwrap();
        b.write_page(p0, PageWrite::Borrowed(&page(0x01))).unwrap();
        b.commit().unwrap();

        // Second batch dies mid-flush: torn tail after a good commit.
        b.write_page(p0, PageWrite::Borrowed(&page(0x02))).unwrap();
        b.write_page(p1, PageWrite::Borrowed(&page(0x03))).unwrap();
        b.sabotage_next_commit(CommitSabotage::TornWal);
        let err = b.commit().unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
        assert!(b.wal_len_bytes() > 0, "the torn prefix reached the log");
        drop(b);

        let b = DurableBackend::open(&dir, PS).unwrap();
        let stats = b.take_recovery_stats().expect("recovery ran");
        assert!(stats.torn_bytes > 0, "the tail was detected and measured");
        // The first commit is still in the log (no checkpoint ran), so
        // recovery redoes it — idempotently — and stops at the tear.
        assert_eq!(stats.commits, 1);
        // The torn batch never happened; the first commit survives.
        assert_eq!(b.read_page(p0).unwrap().as_slice(), page(0x01).as_slice());
        assert_eq!(b.read_page(p1).unwrap().as_slice(), &[0u8; PS]);
        assert_eq!(b.wal_len_bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let dir = tmp("checkpoint");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        for i in 0..4u8 {
            let pid = b.allocate_page(f).unwrap();
            b.write_page(pid, PageWrite::Borrowed(&page(i))).unwrap();
            b.commit().unwrap();
        }
        let len = b.wal_len_bytes();
        assert!(len > 0, "four commits accumulated log bytes");
        let stats = b.checkpoint().unwrap();
        assert_eq!(stats.truncated_bytes, len);
        assert_eq!(b.wal_len_bytes(), 0);
        // State intact after the truncation.
        for i in 0..4u8 {
            let pid = PageId::new(f, i as u32);
            assert_eq!(b.read_page(pid).unwrap().as_slice(), page(i).as_slice());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_is_free() {
        let dir = tmp("empty-commit");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let stats = b.commit().unwrap();
        assert_eq!(stats, CommitStats::default());
        assert_eq!(b.wal_len_bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
