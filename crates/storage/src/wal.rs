//! Write-ahead logging: the durability sidecar over [`FileBackend`].
//!
//! [`DurableBackend`] wraps a real-file [`FileBackend`] with an
//! *apply-at-checkpoint* protocol built for change-proportional,
//! batched, overlapped I/O:
//!
//! * page writes land in an in-memory **overlay** (uncommitted state) —
//!   the data files on disk only ever hold checkpointed images;
//! * [`StorageBackend::commit`] encodes the overlay as one sealed frame
//!   group — **skip-clean**: pages whose bytes equal the committed
//!   image (checksum compare against a per-page FNV cache) are dropped,
//!   so repeated-touch workloads log only real deltas — and appends it
//!   to the log. Under [`Durability::Barrier`] the group (plus every
//!   deferred group before it) is flushed and fsynced before returning;
//!   under [`Durability::Deferred`] it stays in the **group-commit
//!   buffer** until the next barrier, so consecutive commits share one
//!   fsync. Surviving images are promoted to a **committed overlay**
//!   read layer instead of being applied to the data files;
//! * [`StorageBackend::checkpoint`] drains the backlog: it seals
//!   stragglers, applies the committed overlay to the data files, syncs
//!   them, and truncates the log — eager apply is off the commit hot
//!   path entirely;
//! * [`DurableBackend::open`] runs **recovery**: scan the log, replay
//!   every frame group that is sealed by a valid commit frame (redo is
//!   idempotent — frames are full page images), and truncate whatever
//!   torn tail a mid-flush crash left behind. Deferred groups that
//!   never reached a barrier were only ever in the in-memory buffer, so
//!   a crash rolls them back wholesale: recovery always yields a
//!   *prefix* of sealed groups, never a mix.
//!
//! File creation/deletion and page allocation pass straight through to
//! the inner backend: they are bookkeeping, and any stale files or tail
//! pages a crash leaves behind are unreachable — the catalog that names
//! live structures is itself a page file covered by the log.
//!
//! ## Frame format
//!
//! ```text
//! page frame    'P' | file u32 | page u32 | len u32 | data[len] | fnv64
//! commit frame  'C' | seq u64  | frames u32         |            fnv64
//! ```
//!
//! All integers little-endian; the trailing FNV-1a 64 checksum covers
//! every byte of the frame before it. A frame that fails to parse, fails
//! its checksum, or is not sealed by a commit frame is part of a torn
//! tail and is discarded by recovery.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use trijoin_common::{Error, Result};

use crate::backend::{
    CheckpointStats, CommitSabotage, CommitStats, Durability, FileBackend, PageWrite,
    RecoveryStats, StorageBackend,
};
use crate::disk::{FileId, PageId};

/// Frame tags.
const TAG_PAGE: u8 = b'P';
const TAG_COMMIT: u8 = b'C';

/// FNV-1a 64 — the frame checksum and the skip-clean page fingerprint.
/// Not cryptographic; it detects torn and bit-rotted frames, which is
/// all recovery needs.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append one page-image frame for `pid` to `buf`.
fn encode_page_frame(buf: &mut Vec<u8>, pid: PageId, data: &[u8]) {
    let start = buf.len();
    buf.push(TAG_PAGE);
    buf.extend_from_slice(&pid.file.0.to_le_bytes());
    buf.extend_from_slice(&pid.page.to_le_bytes());
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    buf.extend_from_slice(data);
    let sum = fnv64(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
}

/// Append one commit frame sealing `frames` page frames to `buf`.
fn encode_commit_frame(buf: &mut Vec<u8>, seq: u64, frames: u32) {
    let start = buf.len();
    buf.push(TAG_COMMIT);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&frames.to_le_bytes());
    let sum = fnv64(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
}

/// One decoded log record.
enum Frame {
    Page { pid: PageId, data: Vec<u8> },
    Commit { frames: u32 },
}

/// Decode the frame starting at `at`; `None` for a torn/corrupt tail.
/// Returns the frame and the offset just past it.
fn decode_frame(log: &[u8], at: usize) -> Option<(Frame, usize)> {
    let u32_at =
        |o: usize| -> Option<u32> { Some(u32::from_le_bytes(log.get(o..o + 4)?.try_into().ok()?)) };
    let u64_at =
        |o: usize| -> Option<u64> { Some(u64::from_le_bytes(log.get(o..o + 8)?.try_into().ok()?)) };
    match *log.get(at)? {
        TAG_PAGE => {
            let file = u32_at(at + 1)?;
            let page = u32_at(at + 5)?;
            let len = u32_at(at + 9)? as usize;
            let data_end = at.checked_add(13)?.checked_add(len)?;
            let data = log.get(at + 13..data_end)?;
            let sum = u64_at(data_end)?;
            if sum != fnv64(&log[at..data_end]) {
                return None;
            }
            let pid = PageId::new(FileId(file), page);
            Some((Frame::Page { pid, data: data.to_vec() }, data_end + 8))
        }
        TAG_COMMIT => {
            let frames = u32_at(at + 9)?;
            let sum = u64_at(at + 13)?;
            if sum != fnv64(&log[at..at + 13]) {
                return None;
            }
            Some((Frame::Commit { frames }, at + 21))
        }
        _ => None,
    }
}

/// A write-ahead log file with a group-commit buffer: sealed frame
/// groups are *appended* to an in-memory buffer (pure memcpy, no
/// syscall) and a later *sync* flushes every buffered group with one
/// positional write + one fsync. The handle is opened once and reused —
/// the commit hot path never reopens the file.
pub struct Wal {
    path: PathBuf,
    file: fs::File,
    /// Bytes written to the OS file (the buffer flushes at this offset).
    flushed: Cell<u64>,
    /// Sealed frame groups not yet flushed+fsynced. Deferred commits
    /// live only here; dropping the process loses them — which is
    /// exactly the [`Durability::Deferred`] rollback contract.
    buf: RefCell<Vec<u8>>,
    /// Bytes of `flushed` known to be on the device (covered by an
    /// fdatasync). `synced < flushed` means early-written-back groups
    /// are waiting for the next barrier's sync.
    synced: Cell<u64>,
    seq: Cell<u64>,
}

impl Wal {
    /// Name of the log file inside a store directory.
    pub const FILE_NAME: &'static str = "wal.log";

    /// Buffered deferred groups beyond this many bytes are written to
    /// the file early — *without* an fsync — so OS writeback can drain
    /// them in the background between barriers; the sealing sync then
    /// has little left to wait on. Early writeback is compatible with
    /// the [`Durability::Deferred`] contract: a deferred group may
    /// become durable any time up to its sealing barrier, and the log
    /// stays an in-order group sequence either way.
    const WRITEBACK_THRESHOLD: usize = 256 * 1024;

    fn open_handle(path: &Path, truncate: bool) -> Result<fs::File> {
        fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(truncate)
            .open(path)
            .map_err(|e| Error::io(format!("open {path:?}"), &e))
    }

    /// Start a fresh (empty) log in `dir`.
    pub fn create(dir: &Path) -> Result<Wal> {
        let path = dir.join(Self::FILE_NAME);
        let file = Self::open_handle(&path, true)?;
        Ok(Wal {
            path,
            file,
            flushed: Cell::new(0),
            buf: RefCell::new(Vec::new()),
            synced: Cell::new(0),
            seq: Cell::new(0),
        })
    }

    /// Open the log in `dir` (created empty if absent).
    pub fn open(dir: &Path) -> Result<Wal> {
        let path = dir.join(Self::FILE_NAME);
        let file = Self::open_handle(&path, false)?;
        let len = file.metadata().map_err(|e| Error::io(format!("stat {path:?}"), &e))?.len();
        Ok(Wal {
            path,
            file,
            flushed: Cell::new(len),
            buf: RefCell::new(Vec::new()),
            // Pre-existing bytes were this store's last session's
            // problem; recovery re-syncs everything it keeps.
            synced: Cell::new(len),
            seq: Cell::new(0),
        })
    }

    /// Current log length in bytes, buffered groups included.
    pub fn len_bytes(&self) -> u64 {
        self.flushed.get() + self.buf.borrow().len() as u64
    }

    /// Append `batch` (already encoded, sealed frames) to the group
    /// buffer. No syscall: durability comes from the next [`Wal::sync`].
    fn append(&self, batch: &[u8]) {
        self.buf.borrow_mut().extend_from_slice(batch);
    }

    /// Write the buffered groups into the file *without* syncing —
    /// early writeback the OS drains in the background. Durability
    /// still comes from the next [`Wal::sync`].
    fn flush(&self) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let mut buf = self.buf.borrow_mut();
        if buf.is_empty() {
            return Ok(());
        }
        self.file
            .write_all_at(&buf, self.flushed.get())
            .map_err(|e| Error::io("flush wal batch", &e))?;
        self.flushed.set(self.flushed.get() + buf.len() as u64);
        buf.clear();
        Ok(())
    }

    /// Flush every buffered group with one positional write and fsync
    /// the log: the group-commit barrier. Returns the fsyncs issued
    /// (0 when nothing was buffered *and* no early-written-back bytes
    /// await their sync).
    fn sync(&self) -> Result<u64> {
        if self.buf.borrow().is_empty() && self.synced.get() == self.flushed.get() {
            return Ok(0);
        }
        self.flush()?;
        // `fdatasync`: the appended bytes and the grown file size are
        // what recovery reads; a timestamp journal flush buys nothing.
        self.file.sync_data().map_err(|e| Error::io("sync wal", &e))?;
        self.synced.set(self.flushed.get());
        Ok(1)
    }

    /// Flush any buffered groups plus only a strict byte prefix of
    /// `batch`, *without* syncing — the simulated mid-flush crash that
    /// leaves a torn tail.
    fn append_torn(&self, batch: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let mut buf = self.buf.borrow_mut();
        let keep = batch.len() / 2;
        buf.extend_from_slice(&batch[..keep]);
        self.file
            .write_all_at(&buf, self.flushed.get())
            .map_err(|e| Error::io("append torn wal batch", &e))?;
        self.flushed.set(self.flushed.get() + buf.len() as u64);
        buf.clear();
        Ok(())
    }

    /// Truncate the log to `len` bytes (recovery discarding a torn tail,
    /// or a checkpoint resetting it to zero), discard any buffered
    /// groups, and sync the truncation.
    fn truncate_to(&self, len: u64) -> Result<()> {
        self.buf.borrow_mut().clear();
        self.file.set_len(len).map_err(|e| Error::io("truncate wal", &e))?;
        self.file.sync_all().map_err(|e| Error::io("sync wal truncation", &e))?;
        self.flushed.set(len);
        self.synced.set(len);
        Ok(())
    }

    /// Read the whole on-medium log (recovery scan input).
    fn read_all(&self) -> Result<Vec<u8>> {
        fs::read(&self.path).map_err(|e| Error::io(format!("read {:?}", self.path), &e))
    }
}

/// Page images keyed `(file, page)`. A `BTreeMap` so commit encodes
/// frames in a deterministic order.
type Overlay = BTreeMap<(u32, u32), Rc<Vec<u8>>>;

/// [`FileBackend`] plus a WAL: atomic, durable commits with crash
/// recovery. See the module docs for the protocol.
pub struct DurableBackend {
    inner: FileBackend,
    wal: Wal,
    /// Uncommitted page images.
    overlay: RefCell<Overlay>,
    /// Committed-but-unapplied page images: the read layer between the
    /// overlay and the data files. Drained by [`Self::checkpoint`].
    committed: RefCell<Overlay>,
    /// FNV fingerprint of each page's committed image — the skip-clean
    /// cache. A hit means the overlay write re-created identical bytes
    /// and carries no information for redo.
    clean: RefCell<HashMap<(u32, u32), u64>>,
    /// Files dirtied by [`StorageBackend::apply_backlog`] since the
    /// last checkpoint: the only files a checkpoint has to fsync.
    dirty: RefCell<BTreeSet<u32>>,
    /// Reusable frame-group encode buffer (no per-commit allocation).
    scratch: RefCell<Vec<u8>>,
    /// Stats from the recovery pass `open` ran, consumed once.
    recovery: Cell<Option<RecoveryStats>>,
    /// Armed crash for the next commit (simulation harness).
    sabotage: Cell<Option<CommitSabotage>>,
}

impl DurableBackend {
    fn assemble(inner: FileBackend, wal: Wal, recovery: Option<RecoveryStats>) -> DurableBackend {
        DurableBackend {
            inner,
            wal,
            overlay: RefCell::new(BTreeMap::new()),
            committed: RefCell::new(BTreeMap::new()),
            clean: RefCell::new(HashMap::new()),
            dirty: RefCell::new(BTreeSet::new()),
            scratch: RefCell::new(Vec::new()),
            recovery: Cell::new(recovery),
            sabotage: Cell::new(None),
        }
    }

    /// Create a fresh durable store in `dir`.
    pub fn create(dir: &Path, page_size: usize) -> Result<DurableBackend> {
        let inner = FileBackend::create(dir, page_size)?;
        let wal = Wal::create(dir)?;
        Ok(Self::assemble(inner, wal, None))
    }

    /// Reopen a durable store, running crash recovery: replay committed
    /// frame groups into the data files, discard any torn tail, sync,
    /// and truncate the log (so recovery is idempotent — running it
    /// again finds an empty log and changes nothing). Deferred groups
    /// that never reached a barrier were only buffered in memory, so
    /// the replayed log is always a clean prefix of sealed groups.
    pub fn open(dir: &Path, page_size: usize) -> Result<DurableBackend> {
        let inner = FileBackend::open(dir, page_size)?;
        let wal = Wal::open(dir)?;
        let log = wal.read_all()?;

        let mut stats = RecoveryStats::default();
        let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
        let mut at = 0usize;
        let mut good_end = 0usize;
        while at < log.len() {
            match decode_frame(&log, at) {
                Some((Frame::Page { pid, data }, next)) => {
                    pending.push((pid, data));
                    at = next;
                }
                Some((Frame::Commit { frames }, next)) => {
                    if frames as usize != pending.len() {
                        // A commit frame sealing the wrong number of
                        // frames is corruption; stop here.
                        break;
                    }
                    for (pid, data) in pending.drain(..) {
                        inner.ensure_file(pid.file);
                        inner.extend_to(pid.file, pid.page + 1)?;
                        inner.write_page(pid, PageWrite::Borrowed(&data))?;
                        stats.frames += 1;
                    }
                    stats.commits += 1;
                    at = next;
                    good_end = at;
                }
                None => break, // torn/corrupt tail
            }
        }
        stats.torn_bytes = (log.len() - good_end) as u64;

        // Make the replay durable, then bound the log: everything it
        // held is now in the data files.
        inner.sync_all_files()?;
        wal.truncate_to(0)?;
        let ran = stats.commits > 0 || stats.torn_bytes > 0;
        Ok(Self::assemble(inner, wal, ran.then_some(stats)))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.inner.dir()
    }

    /// Uncommitted pages currently buffered in the overlay (tests).
    pub fn overlay_pages(&self) -> usize {
        self.overlay.borrow().len()
    }
}

impl StorageBackend for DurableBackend {
    fn create_file(&self) -> FileId {
        self.inner.create_file()
    }

    fn delete_file(&self, file: FileId) {
        // Deletion passes through: only derived/scratch structures are
        // ever deleted at runtime, and the catalog never names them
        // across a crash boundary. Drop their uncommitted and
        // committed-but-unapplied images and fingerprints too.
        self.overlay.borrow_mut().retain(|&(f, _), _| f != file.0);
        self.committed.borrow_mut().retain(|&(f, _), _| f != file.0);
        self.clean.borrow_mut().retain(|&(f, _), _| f != file.0);
        self.inner.delete_file(file);
    }

    fn file_count(&self) -> u32 {
        self.inner.file_count()
    }

    fn num_pages(&self, file: FileId) -> Result<u32> {
        self.inner.num_pages(file)
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        // Allocation is bookkeeping (a zeroed tail page): pass through.
        // A crash can leave allocated-but-uncommitted tail pages behind;
        // they are unreachable until a committed structure points at
        // them, so they are garbage, not corruption.
        self.inner.allocate_page(file)
    }

    fn read_page(&self, pid: PageId) -> Result<Rc<Vec<u8>>> {
        let key = (pid.file.0, pid.page);
        if let Some(img) = self.overlay.borrow().get(&key) {
            // Serve uncommitted writes back to their writer — but only
            // for pages that still exist (delete_file purged its keys).
            return Ok(Rc::clone(img));
        }
        if let Some(img) = self.committed.borrow().get(&key) {
            // Committed but not yet applied to the data file: the
            // checkpoint backlog is a read layer, not a stall.
            return Ok(Rc::clone(img));
        }
        self.inner.read_page(pid)
    }

    fn write_page(&self, pid: PageId, data: PageWrite<'_>) -> Result<()> {
        // Validate against the inner store so out-of-range writes fail
        // exactly like they would without the overlay.
        let pages = self.inner.num_pages(pid.file)?;
        if pid.page >= pages {
            return Err(Error::PageNotFound { file: pid.file.0, page: pid.page });
        }
        self.overlay.borrow_mut().insert((pid.file.0, pid.page), data.to_rc());
        Ok(())
    }

    fn total_pages(&self) -> u64 {
        self.inner.total_pages()
    }

    fn wal_enabled(&self) -> bool {
        true
    }

    fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    fn wal_apply_lag(&self) -> u64 {
        self.committed.borrow().len() as u64
    }

    fn commit(&self, durability: Durability) -> Result<CommitStats> {
        let sabotage = self.sabotage.take();
        if self.overlay.borrow().is_empty() {
            // Nothing new this commit; a barrier still seals whatever
            // deferred groups are waiting in the log buffer.
            if durability == Durability::Barrier {
                let fsyncs = self.wal.sync()?;
                return Ok(CommitStats { fsyncs, ..CommitStats::default() });
            }
            return Ok(CommitStats::default());
        }

        // Encode the group into the reusable scratch buffer: page
        // frames in (file, page) order, sealed by one commit frame.
        // Skip-clean: a page whose bytes equal its committed image
        // carries no information for redo and is dropped — unless a
        // sabotage is armed, where the full group is logged so the
        // crash corpus stays deterministic.
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        let mut skipped = 0u64;
        let mut sealed: Vec<((u32, u32), u64)> = Vec::new();
        {
            let overlay = self.overlay.borrow();
            let clean = self.clean.borrow();
            for (&key, img) in overlay.iter() {
                let sum = fnv64(img);
                if sabotage.is_none() && clean.get(&key) == Some(&sum) {
                    skipped += 1;
                    continue;
                }
                encode_page_frame(&mut scratch, PageId::new(FileId(key.0), key.1), img);
                sealed.push((key, sum));
            }
        }
        let frames = sealed.len() as u64;

        if frames == 0 {
            // Every page matched its committed image: nothing to log or
            // promote. A barrier still seals pending deferred groups.
            self.overlay.borrow_mut().clear();
            let fsyncs = if durability == Durability::Barrier { self.wal.sync()? } else { 0 };
            return Ok(CommitStats { frames: 0, bytes: 0, frames_skipped: skipped, fsyncs });
        }

        let seq = self.wal.seq.get() + 1;
        encode_commit_frame(&mut scratch, seq, frames as u32);
        let bytes = scratch.len() as u64;

        match sabotage {
            Some(CommitSabotage::TornWal) => {
                // Die mid-flush: a byte prefix of the batch reaches the
                // log, no commit frame, nothing promoted. The commit
                // fails, and the overlay dies with the "process".
                self.wal.append_torn(&scratch)?;
                drop(scratch);
                self.overlay.borrow_mut().clear();
                return Err(Error::io_kind("wal commit", "simulated crash during log flush"));
            }
            Some(CommitSabotage::SkipApply) => {
                // Die between the log sync and the overlay promotion:
                // the commit IS durable; recovery must redo it from the
                // log. The overlay dies with the "process".
                self.wal.append(&scratch);
                let fsyncs = self.wal.sync()?;
                self.wal.seq.set(seq);
                drop(scratch);
                self.overlay.borrow_mut().clear();
                return Ok(CommitStats { frames, bytes, frames_skipped: skipped, fsyncs });
            }
            None => {}
        }

        // Append the sealed group; a barrier flushes and fsyncs every
        // group buffered since the last one in a single write. A real
        // I/O failure leaves the overlay in place: nothing is lost
        // until the caller decides what to do with the error.
        self.wal.append(&scratch);
        let fsyncs = match durability {
            Durability::Barrier => self.wal.sync()?,
            Durability::Deferred => {
                if self.wal.buf.borrow().len() >= Wal::WRITEBACK_THRESHOLD {
                    self.wal.flush()?;
                }
                0
            }
        };
        self.wal.seq.set(seq);
        drop(scratch);

        // Promote the logged images to the committed read layer — the
        // checkpointer applies them to the data files off the hot path.
        // Skipped pages already equal their committed image: dropped.
        let mut overlay = self.overlay.borrow_mut();
        let mut committed = self.committed.borrow_mut();
        let mut clean = self.clean.borrow_mut();
        for (key, sum) in sealed {
            if let Some(img) = overlay.remove(&key) {
                clean.insert(key, sum);
                committed.insert(key, img);
            }
        }
        overlay.clear();
        Ok(CommitStats { frames, bytes, frames_skipped: skipped, fsyncs })
    }

    fn apply_backlog(&self) -> Result<(u64, u64)> {
        // The log must always cover every image the data files may
        // hold: seal any buffered deferred groups before a page
        // leaves the committed overlay, or an OS page-cache flush
        // could persist images whose commit record a crash erases.
        let fsyncs = self.wal.sync()?;
        let mut committed = self.committed.borrow_mut();
        if committed.is_empty() {
            return Ok((0, fsyncs));
        }
        let mut dirty = self.dirty.borrow_mut();
        let mut pages = 0u64;
        for (&(file, page), img) in committed.iter() {
            self.inner.write_page(PageId::new(FileId(file), page), PageWrite::Shared(img))?;
            dirty.insert(file);
            pages += 1;
        }
        committed.clear();
        Ok((pages, fsyncs))
    }

    fn checkpoint(&self) -> Result<CheckpointStats> {
        // Seal stragglers first: uncommitted overlay pages and any
        // deferred groups still in the log buffer.
        self.commit(Durability::Barrier)?;
        // Drain the apply backlog into the data files, then bound the
        // log: once the data files are synced the log is redundant.
        // Only files that received images since the last checkpoint
        // need an fsync — any other file's on-disk state was already
        // durable then, and the truncated log holds no frames for it.
        self.apply_backlog()?;
        let dirty: Vec<u32> = std::mem::take(&mut *self.dirty.borrow_mut()).into_iter().collect();
        for file in dirty {
            // A file applied to and then deleted needs no sync; its
            // directory entry is gone.
            if self.inner.num_pages(FileId(file)).is_ok() {
                self.inner.sync_file(FileId(file))?;
            }
        }
        let truncated = self.wal.len_bytes();
        self.wal.truncate_to(0)?;
        Ok(CheckpointStats { truncated_bytes: truncated })
    }

    fn take_recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery.take()
    }

    fn sabotage_next_commit(&self, mode: CommitSabotage) {
        self.sabotage.set(Some(mode));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 256;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("trijoin-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; PS]
    }

    #[test]
    fn frame_codec_roundtrip_and_checksum() {
        let mut buf = Vec::new();
        encode_page_frame(&mut buf, PageId::new(FileId(3), 7), &page(0xEE));
        encode_commit_frame(&mut buf, 1, 1);
        let (frame, next) = decode_frame(&buf, 0).unwrap();
        match frame {
            Frame::Page { pid, data } => {
                assert_eq!(pid, PageId::new(FileId(3), 7));
                assert_eq!(data, page(0xEE));
            }
            Frame::Commit { .. } => panic!("expected a page frame"),
        }
        let (frame, end) = decode_frame(&buf, next).unwrap();
        assert!(matches!(frame, Frame::Commit { frames: 1 }));
        assert_eq!(end, buf.len());

        // One flipped byte anywhere kills the frame.
        let mut bent = buf.clone();
        bent[20] ^= 0x40;
        assert!(decode_frame(&bent, 0).is_none());
        // A truncated frame is torn, not a panic.
        assert!(decode_frame(&buf[..buf.len() - 1], next).is_none());
        assert!(decode_frame(&buf[..5], 0).is_none());
    }

    #[test]
    fn uncommitted_writes_stay_out_of_the_data_files() {
        let dir = tmp("overlay");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0x11))).unwrap();
        // The writer reads its own write back...
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0x11).as_slice());
        assert_eq!(b.overlay_pages(), 1);
        // ...but the medium still holds the allocated zero page.
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), &[0u8; PS]);

        // Commit promotes the image to the committed read layer; the
        // data file is applied lazily, at checkpoint.
        b.commit(Durability::Barrier).unwrap();
        assert_eq!(b.overlay_pages(), 0);
        assert_eq!(b.wal_apply_lag(), 1, "committed image awaits the checkpointer");
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0x11).as_slice());
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), &[0u8; PS]);

        b.checkpoint().unwrap();
        assert_eq!(b.wal_apply_lag(), 0);
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), page(0x11).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_commit_recovers_to_last_commit() {
        let dir = tmp("crash-mid-batch");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xAA))).unwrap();
        b.commit(Durability::Barrier).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xBB))).unwrap();
        drop(b); // crash: overlay (0xBB) dies with the process

        let b = DurableBackend::open(&dir, PS).unwrap();
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xAA).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_but_unapplied_batch_is_redone() {
        let dir = tmp("redo");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xCC))).unwrap();
        b.sabotage_next_commit(CommitSabotage::SkipApply);
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!(stats.frames, 1, "the commit is durable");
        assert_eq!(stats.fsyncs, 1, "the sealed group reached the medium");
        // The data file never saw the image...
        assert_eq!(b.inner.read_page(pid).unwrap().as_slice(), &[0u8; PS]);
        drop(b);

        // ...recovery redoes it from the log.
        let b = DurableBackend::open(&dir, PS).unwrap();
        let stats = b.take_recovery_stats().expect("recovery ran");
        assert_eq!((stats.frames, stats.commits, stats.torn_bytes), (1, 1, 0));
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xCC).as_slice());
        assert_eq!(b.wal_len_bytes(), 0, "recovery bounds the log");

        // Idempotent double recovery: nothing left to replay.
        drop(b);
        let b = DurableBackend::open(&dir, PS).unwrap();
        assert!(b.take_recovery_stats().is_none());
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xCC).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_is_truncated_not_replayed() {
        let dir = tmp("torn-tail");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let p0 = b.allocate_page(f).unwrap();
        let p1 = b.allocate_page(f).unwrap();
        b.write_page(p0, PageWrite::Borrowed(&page(0x01))).unwrap();
        b.commit(Durability::Barrier).unwrap();

        // Second batch dies mid-flush: torn tail after a good commit.
        b.write_page(p0, PageWrite::Borrowed(&page(0x02))).unwrap();
        b.write_page(p1, PageWrite::Borrowed(&page(0x03))).unwrap();
        b.sabotage_next_commit(CommitSabotage::TornWal);
        let err = b.commit(Durability::Barrier).unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
        assert!(b.wal_len_bytes() > 0, "the torn prefix reached the log");
        drop(b);

        let b = DurableBackend::open(&dir, PS).unwrap();
        let stats = b.take_recovery_stats().expect("recovery ran");
        assert!(stats.torn_bytes > 0, "the tail was detected and measured");
        // The first commit is still in the log (no checkpoint ran), so
        // recovery redoes it — idempotently — and stops at the tear.
        assert_eq!(stats.commits, 1);
        // The torn batch never happened; the first commit survives.
        assert_eq!(b.read_page(p0).unwrap().as_slice(), page(0x01).as_slice());
        assert_eq!(b.read_page(p1).unwrap().as_slice(), &[0u8; PS]);
        assert_eq!(b.wal_len_bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let dir = tmp("checkpoint");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        for i in 0..4u8 {
            let pid = b.allocate_page(f).unwrap();
            b.write_page(pid, PageWrite::Borrowed(&page(i))).unwrap();
            b.commit(Durability::Barrier).unwrap();
        }
        let len = b.wal_len_bytes();
        assert!(len > 0, "four commits accumulated log bytes");
        let stats = b.checkpoint().unwrap();
        assert_eq!(stats.truncated_bytes, len);
        assert_eq!(b.wal_len_bytes(), 0);
        // State intact after the truncation — now straight from the
        // data files (the committed read layer drained).
        assert_eq!(b.wal_apply_lag(), 0);
        for i in 0..4u8 {
            let pid = PageId::new(f, i as u32);
            assert_eq!(b.read_page(pid).unwrap().as_slice(), page(i).as_slice());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_is_free() {
        let dir = tmp("empty-commit");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!(stats, CommitStats::default());
        assert_eq!(b.wal_len_bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn skip_clean_drops_rewrites_of_identical_bytes() {
        let dir = tmp("skip-clean");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0x11))).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!((stats.frames, stats.frames_skipped), (1, 0), "first image always logs");
        let len = b.wal_len_bytes();

        // Rewrite the same bytes: the commit logs zero page frames and
        // the log does not grow.
        b.write_page(pid, PageWrite::Borrowed(&page(0x11))).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!((stats.frames, stats.frames_skipped), (0, 1));
        assert_eq!(stats.bytes, 0);
        assert_eq!(b.wal_len_bytes(), len, "clean rewrite appends nothing");
        assert_eq!(b.overlay_pages(), 0, "the overlay still drains");

        // Changed-then-reverted: the overlay holds only the final image,
        // which equals the committed one — nothing is logged.
        b.write_page(pid, PageWrite::Borrowed(&page(0x22))).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0x11))).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!((stats.frames, stats.frames_skipped), (0, 1));
        assert_eq!(b.wal_len_bytes(), len);

        // A genuine change still logs.
        b.write_page(pid, PageWrite::Borrowed(&page(0x33))).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!((stats.frames, stats.frames_skipped), (1, 0));
        assert!(b.wal_len_bytes() > len);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deferred_commits_roll_back_without_a_barrier() {
        let dir = tmp("deferred-rollback");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xAA))).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!(stats.fsyncs, 1);

        // A deferred commit appends to the group buffer only: no fsync,
        // but the image is visible through the committed read layer.
        b.write_page(pid, PageWrite::Borrowed(&page(0xBB))).unwrap();
        let stats = b.commit(Durability::Deferred).unwrap();
        assert_eq!((stats.frames, stats.fsyncs), (1, 0), "deferred commit issues no fsync");
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xBB).as_slice());
        drop(b); // crash before any barrier: the buffered group is lost

        let b = DurableBackend::open(&dir, PS).unwrap();
        assert_eq!(
            b.read_page(pid).unwrap().as_slice(),
            page(0xAA).as_slice(),
            "the deferred commit rolled back to the last barrier"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn barrier_seals_every_deferred_group_with_one_fsync() {
        let dir = tmp("deferred-seal");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let p0 = b.allocate_page(f).unwrap();
        let p1 = b.allocate_page(f).unwrap();
        b.write_page(p0, PageWrite::Borrowed(&page(0xBB))).unwrap();
        assert_eq!(b.commit(Durability::Deferred).unwrap().fsyncs, 0);
        b.write_page(p1, PageWrite::Borrowed(&page(0xCC))).unwrap();
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!(stats.fsyncs, 1, "one fsync seals both groups");
        drop(b); // crash after the barrier: everything survives

        let b = DurableBackend::open(&dir, PS).unwrap();
        let stats = b.take_recovery_stats().expect("recovery ran");
        assert_eq!(stats.commits, 2, "both sealed groups replayed");
        assert_eq!(b.read_page(p0).unwrap().as_slice(), page(0xBB).as_slice());
        assert_eq!(b.read_page(p1).unwrap().as_slice(), page(0xCC).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_barrier_commit_seals_pending_deferred_groups() {
        let dir = tmp("empty-barrier");
        let b = DurableBackend::create(&dir, PS).unwrap();
        let f = b.create_file();
        let pid = b.allocate_page(f).unwrap();
        b.write_page(pid, PageWrite::Borrowed(&page(0xDD))).unwrap();
        assert_eq!(b.commit(Durability::Deferred).unwrap().fsyncs, 0);
        // No new writes: the barrier has nothing to log but must still
        // flush the buffered group.
        let stats = b.commit(Durability::Barrier).unwrap();
        assert_eq!((stats.frames, stats.fsyncs), (0, 1));
        drop(b);

        let b = DurableBackend::open(&dir, PS).unwrap();
        assert_eq!(b.read_page(pid).unwrap().as_slice(), page(0xDD).as_slice());
        let _ = fs::remove_dir_all(&dir);
    }
}
