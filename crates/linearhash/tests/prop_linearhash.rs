//! Property tests: the linear hash file must behave like a multimap from
//! hash to payload, under arbitrary interleavings of inserts and deletes,
//! with invariants (addressing correctness, load factor) holding throughout.

use proptest::prelude::*;
use std::collections::HashMap;

use trijoin_common::{Cost, SystemParams};
use trijoin_linearhash::LinearHash;
use trijoin_storage::SimDisk;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Delete(u64),
    Lookup(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // Raw u64 hashes straight from the generator: adversarial clustering is
    // allowed (the file must cope with skewed buckets via overflow chains).
    let h = 0u64..64;
    prop::collection::vec(
        prop_oneof![
            4 => (h.clone(), prop::collection::vec(any::<u8>(), 0..16))
                .prop_map(|(h, v)| Op::Insert(h, v)),
            2 => h.clone().prop_map(Op::Delete),
            2 => h.prop_map(Op::Lookup),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn linear_hash_matches_multimap(ops in ops()) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let mut lh = LinearHash::create(&disk, &params, 2, 16).unwrap();
        let mut model: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(h, v) => {
                    lh.insert(h, &v).unwrap();
                    model.entry(h).or_default().push(v);
                }
                Op::Delete(h) => {
                    let got = lh.delete(h, |_| true).unwrap();
                    let had = model.get(&h).map(|v| !v.is_empty()).unwrap_or(false);
                    prop_assert_eq!(got, had);
                    if had {
                        // The file deletes the *first* matching record in
                        // bucket order; the model just needs multiset
                        // equality, so drop one arbitrary entry... except we
                        // must drop the same one. Compare by multiset below,
                        // so removing any single copy is only sound if we
                        // remove the copy the file removed. We instead
                        // remove one element equal to what's now missing.
                        let mut file_now = lh.lookup(h).unwrap();
                        file_now.sort();
                        let entry = model.get_mut(&h).unwrap();
                        entry.sort();
                        // file_now must be `entry` minus exactly one element.
                        prop_assert_eq!(file_now.len() + 1, entry.len());
                        // Find and remove the extra element from the model.
                        let mut removed_one = false;
                        let mut rebuilt = Vec::with_capacity(file_now.len());
                        let mut fi = file_now.into_iter().peekable();
                        for m in entry.drain(..) {
                            match fi.peek() {
                                Some(f) if *f == m => {
                                    rebuilt.push(m);
                                    fi.next();
                                }
                                _ if !removed_one => removed_one = true,
                                _ => rebuilt.push(m),
                            }
                        }
                        *entry = rebuilt;
                    }
                }
                Op::Lookup(h) => {
                    let mut got = lh.lookup(h).unwrap();
                    got.sort();
                    let mut want = model.get(&h).cloned().unwrap_or_default();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
            lh.check_invariants().unwrap();
        }
        let total: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(lh.len(), total as u64);
    }
}

#[derive(Debug, Clone)]
enum GrowOp {
    Insert(u64, u8),
    Delete(u64),
    Rebalance,
}

fn grow_ops() -> impl Strategy<Value = Vec<GrowOp>> {
    // Mix clustered hashes (exercise overflow chains and split rehashing)
    // with the full u64 space (exercise addressing across rounds).
    fn h() -> impl Strategy<Value = u64> {
        prop_oneof![3 => 0u64..48, 1 => any::<u64>()]
    }
    prop::collection::vec(
        prop_oneof![
            6 => (h(), any::<u8>()).prop_map(|(h, b)| GrowOp::Insert(h, b)),
            2 => h().prop_map(GrowOp::Delete),
            1 => Just(GrowOp::Rebalance),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Litwin structural invariants under arbitrary insert/delete/rebalance
    /// interleavings: the split pointer stays inside the current doubling
    /// round, the bucket directory tracks the address function, buckets
    /// only grow, `rebalance` reaches a fixpoint — and at the end every
    /// live key round-trips with exactly its inserted payload multiset.
    #[test]
    fn splits_preserve_addressing_and_round_trip(ops in grow_ops()) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let mut lh = LinearHash::create(&disk, &params, 2, 24).unwrap();
        let mut model: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
        let mut max_buckets = lh.num_buckets();

        for op in ops {
            match op {
                GrowOp::Insert(h, b) => {
                    // A recognizable payload: the hash plus a tag byte, so a
                    // record surviving in the wrong bucket is visible.
                    let mut rec = h.to_le_bytes().to_vec();
                    rec.push(b);
                    lh.insert(h, &rec).unwrap();
                    model.entry(h).or_default().push(rec);
                }
                GrowOp::Delete(h) => {
                    let got = lh.delete(h, |_| true).unwrap();
                    let entry = model.entry(h).or_default();
                    prop_assert_eq!(got, !entry.is_empty());
                    if got {
                        // delete() removes the first record in bucket order;
                        // all records under one hash here share a payload
                        // prefix, so popping any one keeps multiset parity
                        // only if payloads can repeat — compare via lookup.
                        let mut now = lh.lookup(h).unwrap();
                        now.sort();
                        prop_assert_eq!(now.len() + 1, entry.len());
                        entry.sort();
                        let mut kept = Vec::with_capacity(now.len());
                        let mut dropped = false;
                        let mut fi = now.into_iter().peekable();
                        for m in entry.drain(..) {
                            match fi.peek() {
                                Some(f) if *f == m => { kept.push(m); fi.next(); }
                                _ if !dropped => dropped = true,
                                _ => kept.push(m),
                            }
                        }
                        *entry = kept;
                    }
                }
                GrowOp::Rebalance => {
                    lh.rebalance().unwrap();
                    // Fixpoint: a balanced file has nothing left to split.
                    prop_assert_eq!(lh.rebalance().unwrap(), 0);
                }
            }

            // Structural invariants hold after *every* op.
            lh.check_invariants().unwrap();
            let a = lh.addressing();
            prop_assert!(
                a.next_split < a.n0 << a.level,
                "split pointer {} outside round of {} buckets", a.next_split, a.n0 << a.level
            );
            prop_assert_eq!(a.buckets(), lh.num_buckets());
            prop_assert!(lh.num_buckets() >= max_buckets, "buckets shrank");
            max_buckets = lh.num_buckets();
            prop_assert!(lh.load_factor() >= 0.0);
            let model_total: usize = model.values().map(|v| v.len()).sum();
            prop_assert_eq!(lh.len(), model_total as u64);
            prop_assert_eq!(lh.is_empty(), model_total == 0);
        }

        // Round-trip: every live key yields exactly its inserted multiset,
        // regardless of how many splits relocated its records.
        let mut live = 0u64;
        for (h, want) in &model {
            let mut got = lh.lookup(*h).unwrap();
            got.sort();
            let mut want = want.clone();
            want.sort();
            prop_assert_eq!(&got, &want, "hash {:#x} does not round-trip", h);
            live += got.len() as u64;
        }
        prop_assert_eq!(lh.len(), live);
    }
}
