//! Property tests: the linear hash file must behave like a multimap from
//! hash to payload, under arbitrary interleavings of inserts and deletes,
//! with invariants (addressing correctness, load factor) holding throughout.

use proptest::prelude::*;
use std::collections::HashMap;

use trijoin_common::{Cost, SystemParams};
use trijoin_linearhash::LinearHash;
use trijoin_storage::SimDisk;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Delete(u64),
    Lookup(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // Raw u64 hashes straight from the generator: adversarial clustering is
    // allowed (the file must cope with skewed buckets via overflow chains).
    let h = 0u64..64;
    prop::collection::vec(
        prop_oneof![
            4 => (h.clone(), prop::collection::vec(any::<u8>(), 0..16))
                .prop_map(|(h, v)| Op::Insert(h, v)),
            2 => h.clone().prop_map(Op::Delete),
            2 => h.prop_map(Op::Lookup),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn linear_hash_matches_multimap(ops in ops()) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let mut lh = LinearHash::create(&disk, &params, 2, 16).unwrap();
        let mut model: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(h, v) => {
                    lh.insert(h, &v).unwrap();
                    model.entry(h).or_default().push(v);
                }
                Op::Delete(h) => {
                    let got = lh.delete(h, |_| true).unwrap();
                    let had = model.get(&h).map(|v| !v.is_empty()).unwrap_or(false);
                    prop_assert_eq!(got, had);
                    if had {
                        // The file deletes the *first* matching record in
                        // bucket order; the model just needs multiset
                        // equality, so drop one arbitrary entry... except we
                        // must drop the same one. Compare by multiset below,
                        // so removing any single copy is only sound if we
                        // remove the copy the file removed. We instead
                        // remove one element equal to what's now missing.
                        let mut file_now = lh.lookup(h).unwrap();
                        file_now.sort();
                        let entry = model.get_mut(&h).unwrap();
                        entry.sort();
                        // file_now must be `entry` minus exactly one element.
                        prop_assert_eq!(file_now.len() + 1, entry.len());
                        // Find and remove the extra element from the model.
                        let mut removed_one = false;
                        let mut rebuilt = Vec::with_capacity(file_now.len());
                        let mut fi = file_now.into_iter().peekable();
                        for m in entry.drain(..) {
                            match fi.peek() {
                                Some(f) if *f == m => {
                                    rebuilt.push(m);
                                    fi.next();
                                }
                                _ if !removed_one => removed_one = true,
                                _ => rebuilt.push(m),
                            }
                        }
                        *entry = rebuilt;
                    }
                }
                Op::Lookup(h) => {
                    let mut got = lh.lookup(h).unwrap();
                    got.sort();
                    let mut want = model.get(&h).cloned().unwrap_or_default();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
            lh.check_invariants().unwrap();
        }
        let total: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(lh.len(), total as u64);
    }
}
