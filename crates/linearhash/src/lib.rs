//! Litwin linear hash file — the storage organization of the materialized
//! view `V` (Table 5: "Materialized view V: linear hash file on join
//! attribute").
//!
//! Records are stored with an explicit 64-bit hash prefix so buckets can be
//! rehashed on split. Buckets are a primary page plus an overflow chain;
//! the in-memory bucket directory is file metadata (the paper never charges
//! I/O for catalog state), while every bucket page read or written charges
//! through the simulated disk.
//!
//! ## Bucket order and the on-the-fly merge
//!
//! The paper's materialized-view algorithm sorts the differential sets
//! `iR ⋈ S` and `dR` "by hash(A)" so they can be merged into `V` *while `V`
//! is being read* (§3.2 step 3/4). Reading `V` happens in bucket order, so
//! the merge key must be the *bucket address*, not the raw hash: the
//! [`Addressing`] snapshot exposes the exact address function so the
//! execution pipeline can sort differentials by `(bucket, hash)` and stream
//! them against [`LinearHash::scan_bucket`] /
//! [`LinearHash::rewrite_bucket`]. Splits are frozen during such a merge and
//! applied afterwards via [`LinearHash::rebalance`] (the paper's cost model
//! likewise prices only the changed-page writes, not restructuring).
//!
//! ```
//! use trijoin_common::{types::hash_key, Cost, SystemParams};
//! use trijoin_linearhash::LinearHash;
//! use trijoin_storage::SimDisk;
//!
//! let params = SystemParams::paper_defaults();
//! let disk = SimDisk::new(&params, Cost::new());
//! let mut v = LinearHash::create(&disk, &params, 4, 48).unwrap();
//! for k in 0..500u64 {
//!     v.insert(hash_key(k), &k.to_le_bytes()).unwrap();
//! }
//! assert_eq!(v.len(), 500);
//! // Controlled splits keep the load factor near 1/F = 1/1.2.
//! assert!(v.load_factor() <= 1.0 / params.hash_overhead + 0.2);
//! assert_eq!(v.lookup(hash_key(42)).unwrap(), vec![42u64.to_le_bytes().to_vec()]);
//! v.check_invariants().unwrap();
//! ```

use trijoin_common::{Error, Result, SystemParams};
use trijoin_storage::{Disk, FileId, PageId, SlottedPage};

/// Snapshot of the linear-hash address function.
///
/// Standard Litwin addressing: with `n0` initial buckets, `level` completed
/// doubling rounds and `next_split` the split pointer, a hash `h` maps to
/// `h mod (n0·2^level)`, unless that bucket has already been split this
/// round, in which case it maps to `h mod (n0·2^(level+1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addressing {
    /// Initial bucket count.
    pub n0: u64,
    /// Completed doubling rounds.
    pub level: u32,
    /// Split pointer within the current round.
    pub next_split: u64,
}

impl Addressing {
    /// Bucket index for `hash`.
    pub fn addr(&self, hash: u64) -> u64 {
        let m = self.n0 << self.level;
        let b = hash % m;
        if b < self.next_split {
            hash % (m << 1)
        } else {
            b
        }
    }

    /// Total buckets currently addressable.
    pub fn buckets(&self) -> u64 {
        (self.n0 << self.level) + self.next_split
    }
}

/// A linear hash file of `(hash, record)` pairs.
pub struct LinearHash {
    disk: Disk,
    file: FileId,
    /// Pages of each bucket: `pages[b][0]` is the primary page, the rest the
    /// overflow chain (in-memory directory = catalog metadata, not charged).
    pages: Vec<Vec<u32>>,
    addressing: Addressing,
    records: u64,
    /// Free pages recycled from shrunk overflow chains.
    free_pages: Vec<u32>,
    /// Target records per page (the paper's `n_V`, occupancy-derived).
    per_page: usize,
    /// Split when `records > split_load · per_page · buckets`.
    split_load: f64,
}

impl LinearHash {
    /// Create an empty file with `n0` initial buckets. `tuple_bytes` is the
    /// serialized record size (the paper's `T_V`), used to derive the
    /// per-page packing `n_V = ⌊P·PO/T_V⌋`; `params.hash_overhead` (`F`)
    /// sets the split threshold so the file stabilizes at `F·|V|` pages.
    pub fn create(disk: &Disk, params: &SystemParams, n0: u64, tuple_bytes: usize) -> Result<Self> {
        let n0 = n0.max(1);
        let file = disk.create_file();
        let mut pages = Vec::with_capacity(n0 as usize);
        for _ in 0..n0 {
            let pid = disk.allocate_page(file)?;
            disk.write_page_free(pid, SlottedPage::new(disk.page_size()).bytes())?;
            pages.push(vec![pid.page]);
        }
        let per_page = params.tuples_per_page(tuple_bytes + 8).max(1);
        Ok(LinearHash {
            disk: disk.clone(),
            file,
            pages,
            addressing: Addressing { n0, level: 0, next_split: 0 },
            records: 0,
            free_pages: Vec::new(),
            per_page,
            // With threshold 1/F on primary capacity, steady-state page
            // count ≈ F · (records / per_page) = F·|V|.
            split_load: 1.0 / params.hash_overhead,
        })
    }

    /// Bulk-build from records, sized so the file holds roughly `F·|V|`
    /// pages for the given record count (one write I/O per page).
    pub fn build(
        disk: &Disk,
        params: &SystemParams,
        records: impl IntoIterator<Item = (u64, Vec<u8>)>,
        expected: u64,
        tuple_bytes: usize,
    ) -> Result<Self> {
        let per_page = params.tuples_per_page(tuple_bytes + 8).max(1) as u64;
        let data_pages = expected.div_ceil(per_page).max(1);
        let n0 = ((data_pages as f64) * params.hash_overhead).ceil() as u64;
        let mut lh = Self::create(disk, params, n0, tuple_bytes)?;
        // Partition in memory, then write each bucket once.
        let mut parts: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); n0 as usize];
        let mut count = 0u64;
        for (h, rec) in records {
            let b = lh.addressing.addr(h) as usize;
            parts[b].push((h, rec));
            count += 1;
        }
        for (b, part) in parts.into_iter().enumerate() {
            if !part.is_empty() {
                lh.rewrite_bucket(b as u64, part)?;
            }
        }
        lh.records = count;
        Ok(lh)
    }

    /// The live address-function snapshot.
    pub fn addressing(&self) -> Addressing {
        self.addressing
    }

    /// The backing file (fault-injection targeting and space accounting).
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Release the backing file (used when a damaged view is rebuilt into a
    /// fresh file and the old one is abandoned).
    pub fn destroy(self) {
        self.disk.delete_file(self.file);
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total pages (primary + overflow) currently in use.
    pub fn num_pages(&self) -> u64 {
        self.pages.iter().map(|c| c.len() as u64).sum()
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    fn encode(hash: u64, rec: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + rec.len());
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(rec);
        out
    }

    fn decode(raw: &[u8]) -> Result<(u64, Vec<u8>)> {
        if raw.len() < 8 {
            return Err(Error::Corrupt("linear-hash record missing hash prefix".into()));
        }
        Ok((u64::from_le_bytes(raw[..8].try_into().unwrap()), raw[8..].to_vec()))
    }

    /// Read one bucket's records (one read I/O per chain page), in page
    /// order.
    pub fn scan_bucket(&self, bucket: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let chain = self
            .pages
            .get(bucket as usize)
            .ok_or(Error::Invariant(format!("bucket {bucket} out of range")))?;
        let mut out = Vec::new();
        for &p in chain {
            let raw = self.disk.read_page(PageId::new(self.file, p))?;
            let page = SlottedPage::from_bytes(raw)?;
            for (_, rec) in page.iter() {
                out.push(Self::decode(rec)?);
            }
        }
        Ok(out)
    }

    /// Replace one bucket's contents, writing one I/O per page needed and
    /// recycling/allocating overflow pages as the chain shrinks or grows.
    /// Updates the record count by the delta.
    pub fn rewrite_bucket(&mut self, bucket: u64, records: Vec<(u64, Vec<u8>)>) -> Result<()> {
        let old_count = self.bucket_len_free(bucket)?;
        let page_size = self.disk.page_size();
        let mut new_pages: Vec<SlottedPage> = vec![SlottedPage::new(page_size)];
        for (h, rec) in &records {
            let encoded = Self::encode(*h, rec);
            let need_new = {
                let last = new_pages.last().unwrap();
                last.live_count() >= self.per_page || !last.fits(encoded.len())
            };
            if need_new {
                new_pages.push(SlottedPage::new(page_size));
            }
            new_pages
                .last_mut()
                .unwrap()
                .insert(&encoded)
                .map_err(|_| Error::PageOverflow { needed: encoded.len(), available: page_size })?;
        }
        // Reuse the existing chain's page numbers, then recycled pages, then
        // fresh allocations.
        let mut chain = std::mem::take(&mut self.pages[bucket as usize]);
        while chain.len() > new_pages.len() {
            self.free_pages.push(chain.pop().unwrap());
        }
        while chain.len() < new_pages.len() {
            let p = match self.free_pages.pop() {
                Some(p) => p,
                None => self.disk.allocate_page(self.file)?.page,
            };
            chain.push(p);
        }
        for (p, page) in chain.iter().zip(&new_pages) {
            self.disk.write_page(PageId::new(self.file, *p), page.bytes())?;
        }
        self.pages[bucket as usize] = chain;
        self.records = self.records + records.len() as u64 - old_count;
        Ok(())
    }

    /// Record count of one bucket without charging I/O (directory-style
    /// metadata peek used by rewrites to maintain the global count).
    fn bucket_len_free(&self, bucket: u64) -> Result<u64> {
        let chain = self
            .pages
            .get(bucket as usize)
            .ok_or(Error::Invariant(format!("bucket {bucket} out of range")))?;
        let mut n = 0u64;
        for &p in chain {
            let raw = self.disk.read_page_free(PageId::new(self.file, p))?;
            n += SlottedPage::from_bytes(raw)?.live_count() as u64;
        }
        Ok(n)
    }

    /// All records whose hash is exactly `hash` (reads the bucket chain).
    pub fn lookup(&self, hash: u64) -> Result<Vec<Vec<u8>>> {
        let b = self.addressing.addr(hash);
        Ok(self.scan_bucket(b)?.into_iter().filter(|(h, _)| *h == hash).map(|(_, r)| r).collect())
    }

    /// Insert one record and split if the load factor demands it.
    pub fn insert(&mut self, hash: u64, rec: &[u8]) -> Result<()> {
        let b = self.addressing.addr(hash);
        let mut records = self.scan_bucket(b)?;
        records.push((hash, rec.to_vec()));
        self.rewrite_bucket(b, records)?;
        self.maybe_split()?;
        Ok(())
    }

    /// Delete the first record under `hash` whose payload satisfies `pred`.
    pub fn delete(&mut self, hash: u64, pred: impl Fn(&[u8]) -> bool) -> Result<bool> {
        let b = self.addressing.addr(hash);
        let mut records = self.scan_bucket(b)?;
        let before = records.len();
        let mut removed = false;
        records.retain(|(h, r)| {
            if !removed && *h == hash && pred(r) {
                removed = true;
                false
            } else {
                true
            }
        });
        if removed {
            debug_assert_eq!(records.len() + 1, before);
            self.rewrite_bucket(b, records)?;
        }
        Ok(removed)
    }

    /// Current load factor: records per primary-page capacity.
    pub fn load_factor(&self) -> f64 {
        let cap = (self.num_buckets() * self.per_page as u64) as f64;
        if cap == 0.0 {
            0.0
        } else {
            self.records as f64 / cap
        }
    }

    fn maybe_split(&mut self) -> Result<()> {
        if self.load_factor() > self.split_load {
            self.split_one()?;
        }
        Ok(())
    }

    /// Run splits until the load factor is back under the threshold —
    /// called after a bulk on-the-fly merge (splits are frozen during the
    /// merge so the sort order stays valid).
    pub fn rebalance(&mut self) -> Result<u64> {
        let mut splits = 0;
        while self.load_factor() > self.split_load {
            self.split_one()?;
            splits += 1;
        }
        Ok(splits)
    }

    /// Split the bucket at the split pointer: rehash its records between the
    /// old bucket and a new bucket at the end of the table.
    fn split_one(&mut self) -> Result<()> {
        let a = self.addressing;
        let victim = a.next_split;
        let new_bucket = self.pages.len() as u64;
        // Create the new bucket's primary page.
        let p = match self.free_pages.pop() {
            Some(p) => p,
            None => self.disk.allocate_page(self.file)?.page,
        };
        self.disk.write_page_free(
            PageId::new(self.file, p),
            SlottedPage::new(self.disk.page_size()).bytes(),
        )?;
        self.pages.push(vec![p]);
        // Advance the split pointer first so rewrites use the new addressing.
        let m = a.n0 << a.level;
        self.addressing.next_split += 1;
        if self.addressing.next_split == m {
            self.addressing.next_split = 0;
            self.addressing.level += 1;
        }
        // Rehash.
        let records = self.scan_bucket(victim)?;
        let (mut stay, mut go) = (Vec::new(), Vec::new());
        for (h, rec) in records {
            if self.addressing.addr(h) == victim {
                stay.push((h, rec));
            } else {
                debug_assert_eq!(self.addressing.addr(h), new_bucket);
                go.push((h, rec));
            }
        }
        self.rewrite_bucket(victim, stay)?;
        self.rewrite_bucket(new_bucket, go)?;
        Ok(())
    }

    /// Check internal consistency: every record is in the bucket its hash
    /// addresses, and the global count matches (test helper; free reads).
    pub fn check_invariants(&self) -> Result<()> {
        let mut count = 0u64;
        for b in 0..self.num_buckets() {
            let chain = &self.pages[b as usize];
            for &p in chain {
                let raw = self.disk.read_page_free(PageId::new(self.file, p))?;
                let page = SlottedPage::from_bytes(raw)?;
                for (_, rec) in page.iter() {
                    let (h, _) = Self::decode(rec)?;
                    if self.addressing.addr(h) != b {
                        return Err(Error::Invariant(format!(
                            "hash {h:#x} stored in bucket {b}, addresses {}",
                            self.addressing.addr(h)
                        )));
                    }
                    count += 1;
                }
            }
        }
        if count != self.records {
            return Err(Error::Invariant(format!(
                "record count mismatch: stored {count}, tracked {}",
                self.records
            )));
        }
        if self.num_buckets() != self.addressing.buckets() {
            return Err(Error::Invariant("bucket directory vs addressing mismatch".into()));
        }
        Ok(())
    }
}

impl std::fmt::Debug for LinearHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinearHash")
            .field("buckets", &self.num_buckets())
            .field("pages", &self.num_pages())
            .field("records", &self.records)
            .field("load_factor", &self.load_factor())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::{types::hash_key, Cost};
    use trijoin_storage::SimDisk;

    fn setup() -> (Disk, Cost, SystemParams) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        (SimDisk::new(&params, cost.clone()), cost, params)
    }

    #[test]
    fn addressing_is_standard_litwin() {
        let a = Addressing { n0: 4, level: 0, next_split: 0 };
        assert_eq!(a.addr(7), 3);
        assert_eq!(a.addr(8), 0);
        assert_eq!(a.buckets(), 4);
        // After splitting bucket 0: hashes ≡ 0 (mod 4) spread over mod 8.
        let a = Addressing { n0: 4, level: 0, next_split: 1 };
        assert_eq!(a.addr(8), 0); // 8 % 8
        assert_eq!(a.addr(4), 4); // 4 % 8 -> the new bucket
        assert_eq!(a.addr(7), 3); // unsplit bucket unchanged
        assert_eq!(a.buckets(), 5);
        // A full round doubles the table.
        let a = Addressing { n0: 4, level: 1, next_split: 0 };
        assert_eq!(a.buckets(), 8);
        assert_eq!(a.addr(13), 5);
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let (disk, _c, p) = setup();
        let mut lh = LinearHash::create(&disk, &p, 4, 24).unwrap();
        for k in 0..50u64 {
            lh.insert(hash_key(k), &k.to_le_bytes()).unwrap();
        }
        assert_eq!(lh.len(), 50);
        for k in 0..50u64 {
            let got = lh.lookup(hash_key(k)).unwrap();
            assert_eq!(got, vec![k.to_le_bytes().to_vec()], "key {k}");
        }
        assert!(lh.lookup(hash_key(999)).unwrap().is_empty());
        lh.check_invariants().unwrap();
    }

    #[test]
    fn splits_keep_load_factor_bounded() {
        let (disk, _c, p) = setup();
        let mut lh = LinearHash::create(&disk, &p, 2, 24).unwrap();
        for k in 0..300u64 {
            lh.insert(hash_key(k), &k.to_le_bytes()).unwrap();
        }
        assert!(lh.num_buckets() > 2, "table must have grown");
        assert!(
            lh.load_factor() <= 1.0 / p.hash_overhead + 0.2,
            "load factor {} should hover near 1/F",
            lh.load_factor()
        );
        lh.check_invariants().unwrap();
        for k in 0..300u64 {
            assert_eq!(lh.lookup(hash_key(k)).unwrap().len(), 1, "key {k} after splits");
        }
    }

    #[test]
    fn delete_removes_exactly_one() {
        let (disk, _c, p) = setup();
        let mut lh = LinearHash::create(&disk, &p, 4, 24).unwrap();
        let h = hash_key(7);
        lh.insert(h, b"a").unwrap();
        lh.insert(h, b"b").unwrap();
        lh.insert(h, b"a").unwrap(); // duplicate payload
        assert_eq!(lh.len(), 3);
        assert!(lh.delete(h, |r| r == b"a").unwrap());
        assert_eq!(lh.len(), 2);
        let mut got = lh.lookup(h).unwrap();
        got.sort();
        assert_eq!(got, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(!lh.delete(h, |r| r == b"zz").unwrap());
        lh.check_invariants().unwrap();
    }

    #[test]
    fn build_targets_f_times_v_pages() {
        let (disk, cost, p) = setup();
        // 24-byte records + 8-byte hash prefix: per_page = 256*0.7/32 = 5.
        let n = 200u64;
        let records: Vec<(u64, Vec<u8>)> =
            (0..n).map(|k| (hash_key(k), vec![k as u8; 24])).collect();
        let lh = LinearHash::build(&disk, &p, records, n, 24).unwrap();
        assert_eq!(lh.len(), n);
        let v_pages = n.div_ceil(5);
        let expect = (v_pages as f64 * p.hash_overhead).ceil() as u64;
        assert!(
            lh.num_pages() >= expect && lh.num_pages() <= expect + expect / 3,
            "pages {} vs F·|V| target {}",
            lh.num_pages(),
            expect
        );
        lh.check_invariants().unwrap();
        // Build cost: roughly one write per non-empty page.
        assert!(cost.total().ios <= 2 * lh.num_pages());
    }

    #[test]
    fn scan_and_rewrite_bucket_merge_cycle() {
        let (disk, cost, p) = setup();
        let mut lh = LinearHash::create(&disk, &p, 4, 24).unwrap();
        for k in 0..40u64 {
            lh.insert(hash_key(k), &k.to_le_bytes()).unwrap();
        }
        lh.check_invariants().unwrap();
        cost.reset();
        // Simulate the on-the-fly merge: read every bucket in order, drop
        // odd keys, keep the rest; write back only changed buckets.
        let addr = lh.addressing();
        let mut kept = 0u64;
        for b in 0..lh.num_buckets() {
            let records = lh.scan_bucket(b).unwrap();
            let filtered: Vec<(u64, Vec<u8>)> = records
                .iter()
                .filter(|(_, r)| u64::from_le_bytes(r[..8].try_into().unwrap()) % 2 == 0)
                .cloned()
                .collect();
            kept += filtered.len() as u64;
            if filtered.len() != records.len() {
                lh.rewrite_bucket(b, filtered).unwrap();
            }
        }
        assert_eq!(kept, 20);
        assert_eq!(lh.len(), 20);
        assert_eq!(addr, lh.addressing(), "no splits during a frozen merge");
        lh.check_invariants().unwrap();
        for k in 0..40u64 {
            let got = lh.lookup(hash_key(k)).unwrap();
            assert_eq!(got.len(), usize::from(k % 2 == 0), "key {k}");
        }
        assert!(cost.total().ios > 0);
    }

    #[test]
    fn rebalance_after_bulk_growth() {
        let (disk, _c, p) = setup();
        let mut lh = LinearHash::create(&disk, &p, 2, 24).unwrap();
        // Bulk-stuff one bucket's worth of records via rewrite (merge-style),
        // then rebalance.
        let addr = lh.addressing();
        let mut per_bucket: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); 2];
        for k in 0..100u64 {
            let h = hash_key(k);
            per_bucket[addr.addr(h) as usize].push((h, k.to_le_bytes().to_vec()));
        }
        for (b, recs) in per_bucket.into_iter().enumerate() {
            lh.rewrite_bucket(b as u64, recs).unwrap();
        }
        assert_eq!(lh.len(), 100);
        assert!(lh.load_factor() > 1.0, "2 buckets are overloaded");
        let splits = lh.rebalance().unwrap();
        assert!(splits > 0);
        assert!(lh.load_factor() <= 1.0 / p.hash_overhead + 0.01);
        lh.check_invariants().unwrap();
        for k in 0..100u64 {
            assert_eq!(lh.lookup(hash_key(k)).unwrap().len(), 1, "key {k}");
        }
    }

    #[test]
    fn overflow_chains_grow_and_shrink() {
        let (disk, _c, p) = setup();
        let mut lh = LinearHash::create(&disk, &p, 1, 24).unwrap();
        // Force everything into bucket 0 without splits by rewriting.
        let recs: Vec<(u64, Vec<u8>)> = (0..30u64).map(|k| (0u64, vec![k as u8; 24])).collect();
        lh.rewrite_bucket(0, recs).unwrap();
        let grown = lh.num_pages();
        assert!(grown > 1, "30 records of 24B need overflow pages");
        // Shrink back.
        lh.rewrite_bucket(0, vec![(0u64, vec![1u8; 24])]).unwrap();
        assert_eq!(lh.len(), 1);
        // Freed pages are recycled on the next growth.
        let before_pages = disk.num_pages(lh.file).unwrap();
        let recs: Vec<(u64, Vec<u8>)> = (0..30u64).map(|k| (0u64, vec![k as u8; 24])).collect();
        lh.rewrite_bucket(0, recs).unwrap();
        assert_eq!(disk.num_pages(lh.file).unwrap(), before_pages.max(grown as u32));
        lh.check_invariants().unwrap();
    }

    #[test]
    fn empty_file_behaves() {
        let (disk, _c, p) = setup();
        let lh = LinearHash::create(&disk, &p, 3, 24).unwrap();
        assert!(lh.is_empty());
        assert_eq!(lh.num_buckets(), 3);
        assert!(lh.lookup(12345).unwrap().is_empty());
        assert_eq!(lh.scan_bucket(0).unwrap(), Vec::new());
        assert!(lh.scan_bucket(99).is_err());
        lh.check_invariants().unwrap();
    }
}
