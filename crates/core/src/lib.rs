//! # trijoin
//!
//! A full reproduction of *Blakeley & Martin, "Join Index, Materialized
//! View, and Hybrid-Hash Join: A Performance Analysis"* (Indiana University
//! TR 280, June 1989; ICDE 1990): the three strategies for answering an
//! equi-join under deferred updates, implemented as real operators over a
//! simulated 1989 storage stack, together with the paper's analytical cost
//! model and the harnesses that regenerate its figures.
//!
//! ## Quick start
//!
//! ```
//! use trijoin::{Database, WorkloadSpec};
//! use trijoin_common::SystemParams;
//! use trijoin_exec::{execute_collect, JoinStrategy};
//!
//! // A small scenario from the paper's parameter family.
//! let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
//! let spec = WorkloadSpec {
//!     r_tuples: 1000, s_tuples: 1000, tuple_bytes: 200,
//!     sr: 0.05, group_size: 5, pra: 0.1, update_rate: 0.05, seed: 1,
//! };
//! let gen = spec.generate();
//! let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
//!
//! // Cache the view, run some updates, query: the answer reflects them.
//! let mut mv = db.materialized_view().unwrap();
//! let mut updates = gen.update_stream();
//! for _ in 0..50 {
//!     let u = updates.next_update();
//!     mv.on_update(&u).unwrap();
//!     db.r_mut().apply_update(&u.old, &u.new).unwrap();
//! }
//! db.reset_cost();
//! let result = execute_collect(&mut mv, db.r(), db.s()).unwrap();
//! assert!(!result.is_empty());
//! println!("{} tuples in {:.3} simulated seconds",
//!          result.len(), db.cost().elapsed_secs(db.params()));
//! ```
//!
//! ## Crate map
//!
//! * [`Database`] — Table 5's storage organization on a simulated disk;
//! * [`WorkloadSpec`] / [`GeneratedWorkload`] — the paper's synthetic
//!   parameter family with exact selectivity control;
//! * [`Advisor`] — the Section 5 selection heuristics + model-based pick;
//! * [`Experiment`] — engine-vs-model epochs with oracle verification;
//! * re-exports of the strategy types from [`trijoin_exec`] and the cost
//!   model from [`trijoin_model`].

pub mod adaptive;
pub mod advisor;
pub mod breakdown;
pub mod catalog;
pub mod db;
pub mod experiment;
pub mod workload;

pub use adaptive::{AdaptiveStrategy, CachedStrategy};
pub use advisor::{Advisor, Recommendation};
pub use breakdown::Fig5Breakdown;
pub use db::Database;
pub use experiment::{EpochReport, Experiment, MethodOutcome};
pub use workload::{
    measure_workload, GeneratedWorkload, MutationMix, MutationStream, UpdateStream, WorkloadSpec,
};

// The pieces users compose with, re-exported for one-stop imports.
pub use trijoin_common::{Cost, OpCounts, SystemParams};
pub use trijoin_exec::{
    execute_collect, HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, Mutation,
    Update,
};
pub use trijoin_model::{Method, Workload};
pub use trijoin_storage::{Durability, FaultPlan, FaultSpec};
