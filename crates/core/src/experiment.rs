//! End-to-end experiments: run a generated scenario on the execution
//! engine, measure the simulated cost ledger per strategy, and put the
//! analytical model's prediction next to it.

use trijoin_common::{ModelDelta, OpCounts, Result, SystemParams};
use trijoin_exec::{oracle, JoinStrategy};
use trijoin_model::{all_costs, Method, Workload};

use crate::db::Database;
use crate::workload::{GeneratedWorkload, WorkloadSpec};

/// Measured engine cost + predicted model cost for one method.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Which method.
    pub method: Method,
    /// Engine op counts for the whole epoch (update observation + query).
    pub engine_ops: OpCounts,
    /// Engine simulated seconds.
    pub engine_secs: f64,
    /// Model-predicted seconds for the measured workload.
    pub model_secs: f64,
    /// Join cardinality the strategy produced.
    pub tuples: u64,
}

/// Result of one update-then-query epoch over all three strategies.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// The workload statistics (measured, fed to the model).
    pub workload: Workload,
    /// Per-method outcomes in [`Method::all`] order.
    pub outcomes: Vec<MethodOutcome>,
}

impl EpochReport {
    /// The engine's cheapest method this epoch.
    pub fn engine_winner(&self) -> Method {
        self.outcomes
            .iter()
            .min_by(|a, b| a.engine_secs.total_cmp(&b.engine_secs))
            .map(|o| o.method)
            .unwrap()
    }

    /// The model's predicted cheapest method.
    pub fn model_winner(&self) -> Method {
        self.outcomes
            .iter()
            .min_by(|a, b| a.model_secs.total_cmp(&b.model_secs))
            .map(|o| o.method)
            .unwrap()
    }

    /// Per-method engine/model ratio (how far measurement sits from the
    /// analytical prediction).
    pub fn ratios(&self) -> Vec<(Method, f64)> {
        self.outcomes.iter().map(|o| (o.method, o.engine_secs / o.model_secs.max(1e-9))).collect()
    }

    /// The epoch's engine-vs-model drift as serializable [`ModelDelta`]s —
    /// these go into a [`trijoin_common::RunReport`]'s `deltas` array so
    /// model/engine agreement is observable in emitted JSON.
    pub fn model_deltas(&self) -> Vec<ModelDelta> {
        self.outcomes
            .iter()
            .map(|o| ModelDelta {
                label: o.method.label().to_string(),
                engine_secs: o.engine_secs,
                model_secs: o.model_secs,
            })
            .collect()
    }
}

/// Drives one scenario end to end.
pub struct Experiment {
    params: SystemParams,
    generated: GeneratedWorkload,
    /// Verify every strategy's output against the in-memory oracle
    /// (quadratic-ish in result size; disable for large benches).
    pub verify: bool,
}

impl Experiment {
    /// Generate the scenario for `spec` under `params`.
    pub fn new(params: &SystemParams, spec: &WorkloadSpec) -> Self {
        Experiment { params: params.clone(), generated: spec.generate(), verify: true }
    }

    /// The generated workload (for inspection).
    pub fn generated(&self) -> &GeneratedWorkload {
        &self.generated
    }

    /// Run one epoch (apply `‖iR‖` updates, then query) for each strategy
    /// *independently* — each method gets its own fresh database so its
    /// ledger contains exactly its own work, like the paper's analysis.
    pub fn run_epoch(&self) -> Result<EpochReport> {
        let workload = self.generated.measured();
        let mut outcomes = Vec::with_capacity(3);
        let model = all_costs(&self.params, &workload);
        for method in Method::all() {
            let db =
                Database::new(&self.params, self.generated.r.clone(), self.generated.s.clone())?;
            let mut strategy: Box<dyn JoinStrategy> = match method {
                Method::MaterializedView => Box::new(db.materialized_view()?),
                Method::JoinIndex => Box::new(db.join_index()?),
                Method::HybridHash => Box::new(db.hybrid_hash()),
            };
            let mut db = db;
            let mut stream = self.generated.update_stream();
            db.reset_cost();
            for _ in 0..self.generated.updates_per_epoch() {
                let upd = stream.next_update();
                strategy.on_update(&upd)?;
                db.r_mut().apply_update(&upd.old, &upd.new)?;
            }
            let mut result = Vec::new();
            let tuples = strategy.execute(db.r(), db.s(), &mut |v| {
                if self.verify {
                    result.push(v);
                }
            })?;
            let total = db.cost().total();
            // Applying updates to the base relation itself is shared work
            // every method pays identically; the paper's per-method costs
            // start at the differential log (C1). Subtract it via a paired
            // replay that applies the same updates with no strategy
            // observing.
            let engine_ops = total.delta_since(&self.base_maintenance_ops()?);
            if self.verify {
                let want = oracle::join_tuples(stream.current(), &self.generated.s);
                oracle::assert_same_join(method.label(), result, want);
            }
            let engine_secs = engine_ops.time_secs(&self.params);
            let model_secs = model.iter().find(|c| c.method == method).map(|c| c.total()).unwrap();
            outcomes.push(MethodOutcome { method, engine_ops, engine_secs, model_secs, tuples });
        }
        Ok(EpochReport { workload, outcomes })
    }

    /// Ops spent applying the epoch's updates to the base relation alone
    /// (no strategy observing) — subtracted from each strategy's ledger so
    /// comparisons match the paper's accounting, which charges only
    /// strategy-attributable work.
    fn base_maintenance_ops(&self) -> Result<OpCounts> {
        let mut db =
            Database::new(&self.params, self.generated.r.clone(), self.generated.s.clone())?;
        let mut stream = self.generated.update_stream();
        db.reset_cost();
        for _ in 0..self.generated.updates_per_epoch() {
            let upd = stream.next_update();
            db.r_mut().apply_update(&upd.old, &upd.new)?;
        }
        Ok(db.cost().total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            r_tuples: 2_000,
            s_tuples: 2_000,
            tuple_bytes: 200,
            sr: 0.05,
            group_size: 5,
            pra: 0.2,
            update_rate: 0.05,
            seed: 11,
        }
    }

    #[test]
    fn epoch_runs_and_verifies_all_strategies() {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let exp = Experiment::new(&params, &spec());
        let report = exp.run_epoch().unwrap();
        assert_eq!(report.outcomes.len(), 3);
        let counts: Vec<u64> = report.outcomes.iter().map(|o| o.tuples).collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        assert!(report.outcomes.iter().all(|o| o.engine_secs > 0.0 && o.model_secs > 0.0));
    }

    #[test]
    fn epoch_report_winners_are_consistent() {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let exp = Experiment::new(&params, &spec());
        let report = exp.run_epoch().unwrap();
        let w = report.engine_winner();
        let best = report.outcomes.iter().map(|o| o.engine_secs).fold(f64::INFINITY, f64::min);
        let picked = report.outcomes.iter().find(|o| o.method == w).unwrap();
        assert!((picked.engine_secs - best).abs() < 1e-12);
        assert_eq!(report.ratios().len(), 3);
    }
}
