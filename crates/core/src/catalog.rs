//! The durable catalog: a JSON manifest of the database's structures,
//! stored in the backend's file 0.
//!
//! [`crate::Database`]'s in-memory handles (B⁺-tree roots, heights, entry
//! counts, relation names) are not stored in the page images themselves —
//! the paper's cost model never prices reading them back, so they live
//! outside the trees. For the durable backends that state must survive a
//! restart, so every commit serializes it here: a compact JSON document
//! chunked across the pages of file 0 behind an 8-byte length header.
//!
//! Catalog I/O is deliberately *free* of simulated charge (it is part of
//! opening/committing the database, like initial loading, which the paper
//! does not price); durability cost is charged by the WAL commit itself
//! (`wal.*` accounting in [`trijoin_storage::SimDisk::commit`]). The
//! catalog pages still flow through the WAL like any other page write, so
//! a crash between commits can never tear the manifest: recovery rewinds
//! it to the last commit together with the tree pages it describes.

use trijoin_common::{Error, Json, Result};
use trijoin_storage::{Disk, FileId, PageId};

/// The catalog always lives in the backend's first file. `Database`'s
/// durable constructors create it before any relation so the id is fixed.
pub const CATALOG_FILE: FileId = FileId(0);

/// Manifest schema version (bumped on incompatible layout changes).
pub const CATALOG_VERSION: u64 = 1;

/// Serialize `manifest` into file 0: page 0 holds `[len: u64 LE]` followed
/// by the first chunk; pages 1.. hold full-page chunks. Pages are allocated
/// as needed (the file only grows; a shrinking manifest leaves stale tail
/// pages that the next header simply ignores). Free of simulated charge.
pub fn write_catalog(disk: &Disk, manifest: &Json) -> Result<()> {
    let text = manifest.dump();
    let bytes = text.as_bytes();
    let ps = disk.page_size();
    let first_cap = ps - 8;

    let mut pages: Vec<Vec<u8>> = Vec::new();
    let mut page0 = vec![0u8; ps];
    page0[..8].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
    let n0 = bytes.len().min(first_cap);
    page0[8..8 + n0].copy_from_slice(&bytes[..n0]);
    pages.push(page0);
    let mut off = n0;
    while off < bytes.len() {
        let n = (bytes.len() - off).min(ps);
        let mut p = vec![0u8; ps];
        p[..n].copy_from_slice(&bytes[off..off + n]);
        pages.push(p);
        off += n;
    }

    let have = disk.num_pages(CATALOG_FILE)?;
    for _ in have as usize..pages.len() {
        disk.allocate_page(CATALOG_FILE)?;
    }
    for (i, p) in pages.iter().enumerate() {
        disk.write_page_free(PageId::new(CATALOG_FILE, i as u32), p)?;
    }
    Ok(())
}

/// Read the manifest back from file 0. Free of simulated charge.
pub fn read_catalog(disk: &Disk) -> Result<Json> {
    let ps = disk.page_size();
    let page0 = disk.read_page_free(PageId::new(CATALOG_FILE, 0))?;
    let len = u64::from_le_bytes(page0[..8].try_into().unwrap()) as usize;
    let cap = disk.num_pages(CATALOG_FILE)? as usize * ps;
    if len > cap {
        return Err(Error::Corrupt(format!(
            "catalog header claims {len} bytes but file 0 holds at most {cap}"
        )));
    }
    let mut bytes = Vec::with_capacity(len);
    let n0 = len.min(ps - 8);
    bytes.extend_from_slice(&page0[8..8 + n0]);
    let mut page = 1u32;
    while bytes.len() < len {
        let p = disk.read_page_free(PageId::new(CATALOG_FILE, page))?;
        let n = (len - bytes.len()).min(ps);
        bytes.extend_from_slice(&p[..n]);
        page += 1;
    }
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| Error::Corrupt("catalog is not valid UTF-8".into()))?;
    Json::parse(text).map_err(|e| Error::Corrupt(format!("catalog parse error: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::{Cost, SystemParams};
    use trijoin_storage::SimDisk;

    fn disk() -> Disk {
        let params = SystemParams { page_size: 128, ..SystemParams::paper_defaults() };
        SimDisk::new(&params, Cost::new())
    }

    #[test]
    fn roundtrips_multi_page_manifests_free_of_charge() {
        let d = disk();
        assert_eq!(d.create_file(), CATALOG_FILE);
        // Big enough to span several 128-byte pages.
        let mut m = Json::obj().set("version", CATALOG_VERSION);
        for i in 0..20u64 {
            m = m.set(&format!("k{i}"), format!("value-{i}-{}", "x".repeat(17)));
        }
        write_catalog(&d, &m).unwrap();
        assert!(d.num_pages(CATALOG_FILE).unwrap() > 1);
        let back = read_catalog(&d).unwrap();
        assert_eq!(back, m);
        assert!(d.cost().total().is_zero(), "catalog I/O must be free");
    }

    #[test]
    fn rewrite_with_smaller_manifest_ignores_stale_tail() {
        let d = disk();
        assert_eq!(d.create_file(), CATALOG_FILE);
        let big = Json::obj().set("blob", "y".repeat(500));
        write_catalog(&d, &big).unwrap();
        let small = Json::obj().set("version", 2u64);
        write_catalog(&d, &small).unwrap();
        assert_eq!(read_catalog(&d).unwrap(), small);
    }

    #[test]
    fn oversized_header_is_corrupt_not_panic() {
        let d = disk();
        assert_eq!(d.create_file(), CATALOG_FILE);
        write_catalog(&d, &Json::obj().set("a", 1u64)).unwrap();
        let mut raw = d.read_page_free(PageId::new(CATALOG_FILE, 0)).unwrap();
        raw[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        d.write_page_free(PageId::new(CATALOG_FILE, 0), &raw).unwrap();
        assert!(matches!(read_catalog(&d), Err(Error::Corrupt(_))));
    }
}
