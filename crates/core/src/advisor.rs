//! Strategy selection — the paper's Section 5 heuristics and a model-based
//! refinement.
//!
//! The paper closes with three rules of thumb for "database customizers"
//! with incomplete knowledge:
//!
//! (a) if the join relation is much larger than the two relations which
//!     form it, use the hash join;
//! (b) if the join relation is smaller or not much larger than its base
//!     relations and the update activity is ≤ 10%, cache the join as a
//!     materialized view;
//! (c) same size regime but update activity above 10%: partially cache it
//!     as a join index.
//!
//! [`Advisor::heuristic`] implements exactly those rules;
//! [`Advisor::model_based`] prices all three methods with the full §3 cost
//! model and picks the cheapest — the "system which used the designer's
//! estimates to initially select among algorithms" the paper's future-work
//! paragraph sketches.

use trijoin_common::SystemParams;
use trijoin_model::{cheapest, Method, Workload};

/// Strategy recommendation engine.
#[derive(Debug, Clone)]
pub struct Advisor {
    params: SystemParams,
}

/// A recommendation with its reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The chosen method.
    pub method: Method,
    /// Human-readable justification.
    pub reason: String,
}

impl Advisor {
    /// An advisor for the given system parameters.
    pub fn new(params: &SystemParams) -> Self {
        Advisor { params: params.clone() }
    }

    /// The paper's closing heuristics (a)–(c). "Much larger" is read as
    /// more than 3× the larger base relation (the paper's hash-join region
    /// begins where the join result dwarfs its operands).
    pub fn heuristic(&self, w: &Workload) -> Recommendation {
        let join_tuples = w.js * w.r_tuples * w.s_tuples;
        let join_bytes = join_tuples * (w.tr + w.ts);
        let base_bytes = (w.r_tuples * w.tr).max(w.s_tuples * w.ts);
        let activity = if w.r_tuples > 0.0 { w.updates / w.r_tuples } else { 0.0 };
        if join_bytes > 3.0 * base_bytes {
            Recommendation {
                method: Method::HybridHash,
                reason: format!(
                    "join result ({:.0} MB) is much larger than the base relations \
                     ({:.0} MB): rule (a), recompute with hybrid hash",
                    join_bytes / 1e6,
                    base_bytes / 1e6
                ),
            }
        } else if activity <= 0.10 {
            Recommendation {
                method: Method::MaterializedView,
                reason: format!(
                    "join result is not much larger than its operands and update \
                     activity is {:.1}% ≤ 10%: rule (b), cache the full view",
                    100.0 * activity
                ),
            }
        } else {
            Recommendation {
                method: Method::JoinIndex,
                reason: format!(
                    "join result is not much larger than its operands but update \
                     activity is {:.1}% > 10%: rule (c), cache surrogate pairs only",
                    100.0 * activity
                ),
            }
        }
    }

    /// Price all three methods with the analytical model and return the
    /// cheapest, with the predicted totals.
    pub fn model_based(&self, w: &Workload) -> Recommendation {
        let (method, secs) = cheapest(&self.params, w);
        Recommendation {
            method,
            reason: format!("cheapest under the §3 cost model: {secs:.1} s predicted"),
        }
    }

    /// Where the two disagree, the model wins on precision but the
    /// heuristic needs no cost model — this reports both for comparison.
    pub fn both(&self, w: &Workload) -> (Recommendation, Recommendation) {
        (self.heuristic(w), self.model_based(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advisor() -> Advisor {
        Advisor::new(&SystemParams::paper_defaults())
    }

    #[test]
    fn rule_a_huge_join_means_hash() {
        // SR = 1: join is 100× each operand.
        let w = Workload::figure4_point(1.0, 0.02);
        let rec = advisor().heuristic(&w);
        assert_eq!(rec.method, Method::HybridHash);
        assert!(rec.reason.contains("rule (a)"));
    }

    #[test]
    fn rule_b_low_activity_means_view() {
        let w = Workload::figure4_point(0.01, 0.05);
        let rec = advisor().heuristic(&w);
        assert_eq!(rec.method, Method::MaterializedView);
        assert!(rec.reason.contains("rule (b)"));
    }

    #[test]
    fn rule_c_high_activity_means_join_index() {
        let w = Workload::figure4_point(0.01, 0.5);
        let rec = advisor().heuristic(&w);
        assert_eq!(rec.method, Method::JoinIndex);
        assert!(rec.reason.contains("rule (c)"));
    }

    #[test]
    fn model_based_tracks_region_map() {
        let a = advisor();
        assert_eq!(a.model_based(&Workload::figure4_point(0.001, 0.02)).method, Method::JoinIndex);
        assert_eq!(
            a.model_based(&Workload::figure4_point(0.02, 0.02)).method,
            Method::MaterializedView
        );
        assert_eq!(a.model_based(&Workload::figure4_point(1.0, 0.02)).method, Method::HybridHash);
    }

    #[test]
    fn heuristic_and_model_mostly_agree_in_their_heartlands() {
        // The paper: "the actual times obtained will generally not be too
        // far from the optimal time" — check the heuristic's pick is within
        // 3x of the model's optimum across a coarse grid.
        let a = advisor();
        for sr in [0.001, 0.01, 0.1, 1.0] {
            for act in [0.02, 0.2, 0.8] {
                let w = Workload::figure4_point(sr, act);
                let h = a.heuristic(&w);
                let costs = trijoin_model::all_costs(&a.params, &w);
                let best: f64 = costs.iter().map(|c| c.total()).fold(f64::INFINITY, f64::min);
                let picked =
                    costs.iter().find(|c| c.method == h.method).map(|c| c.total()).unwrap();
                assert!(
                    picked <= 6.0 * best,
                    "SR={sr} act={act}: heuristic pick {} is {:.1}x optimal",
                    h.method,
                    picked / best
                );
            }
        }
    }
}
