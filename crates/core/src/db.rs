//! A small database instance wiring the paper's storage organization
//! (Table 5) to the simulated device.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::Path;
use std::rc::Rc;
use trijoin_common::telemetry::{DriftAlert, SeriesSnapshot, Telemetry, TelemetryConfig};
use trijoin_common::{
    BaseTuple, Cost, Error, EventKind, EventLog, Json, Metrics, OpCounts, Result, RunReport,
    SystemParams, ViewTuple,
};
use trijoin_model::Workload;

use trijoin_exec::{
    BilateralView, EagerView, HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView,
    StoredRelation,
};
use trijoin_storage::{
    CheckpointStats, CommitSabotage, CommitStats, Disk, Durability, DurableBackend, FaultPlan,
    SimDisk,
};

use crate::catalog::{self, CATALOG_FILE, CATALOG_VERSION};

/// The engine's telemetry tick: total primitive ledger operations. Purely
/// a function of the simulated ledger, so window boundaries are
/// deterministic and identical across identical runs.
fn ops_tick(total: &OpCounts) -> u64 {
    total.ios + total.comps + total.hashes + total.moves
}

/// Predicted-vs-actual bookkeeping for the cost audit (lives inside the
/// optional [`EngineTelemetry`]).
struct CostAudit {
    /// Measured statistics of the loaded relations (the model's inputs).
    workload: Workload,
    /// Multiplier on every prediction. 1.0 = the stock model; tests
    /// deliberately miscalibrate it to prove drift detection fires.
    calibration: f64,
    /// Model estimate for logging one differential update, microseconds
    /// (MV term C1.1 priced at `updates = 1`).
    apply_unit_us: f64,
    /// Updates applied since the audit was armed.
    apply_seq: u64,
    /// `apply_seq` at each strategy's last audited query — the per-label
    /// pending-update count the next query cycle is priced with (each
    /// strategy folds only its own differential file).
    last_cycle_seq: BTreeMap<&'static str, u64>,
    /// Memoized predictions keyed by `(strategy label, pending updates)`:
    /// steady traffic re-prices the same pending count every cycle, and
    /// building the model's term table allocates, so each distinct key is
    /// priced once. Values are `(cycle µs, spill µs, base-pass pages)`.
    predicted: BTreeMap<(&'static str, u64), (f64, f64, f64)>,
}

/// The audit section a strategy's query cycles record under, without a
/// per-query allocation for the paper strategies.
fn cycle_section(label: &'static str) -> std::borrow::Cow<'static, str> {
    match label {
        "materialized-view" => std::borrow::Cow::Borrowed("cycle.materialized-view"),
        "join-index" => std::borrow::Cow::Borrowed("cycle.join-index"),
        "hybrid-hash" => std::borrow::Cow::Borrowed("cycle.hybrid-hash"),
        other => std::borrow::Cow::Owned(format!("cycle.{other}")),
    }
}

struct EngineTelemetry {
    tel: Telemetry,
    audit: Option<CostAudit>,
}

/// One simulated database: a disk, a cost ledger, and the two base
/// relations organized per Table 5 (`R` clustered on its surrogate; `S`
/// clustered on its surrogate plus a non-clustered index on the join
/// attribute).
pub struct Database {
    params: SystemParams,
    cost: Cost,
    disk: Disk,
    r: StoredRelation,
    s: Rc<StoredRelation>,
    /// Opt-in windowed telemetry + cost audit. Strictly `None` unless
    /// [`Database::enable_telemetry`] ran: engines without it produce
    /// byte-identical reports to the pre-telemetry schema (golden safety).
    telemetry: RefCell<Option<EngineTelemetry>>,
    /// True for databases on a durable backend: [`Database::commit`]
    /// serializes the catalog into file 0 before flushing.
    durable: bool,
}

impl Database {
    /// Build from tuple sets. Loading charges I/O; call
    /// [`Database::reset_cost`] before measuring (the paper does not price
    /// initial loading).
    pub fn new(params: &SystemParams, r: Vec<BaseTuple>, s: Vec<BaseTuple>) -> Result<Self> {
        Self::build(params, r, s, false)
    }

    /// Like [`Database::new`] but `R` also carries an inverted index on the
    /// join attribute — the symmetric access path bilateral maintenance
    /// (updates to `S` as well as `R`) requires.
    pub fn new_bilateral(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
    ) -> Result<Self> {
        Self::build(params, r, s, true)
    }

    fn build(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
        r_inverted: bool,
    ) -> Result<Self> {
        let cost = Cost::new();
        let disk = SimDisk::new(params, cost.clone());
        let r = StoredRelation::build(&disk, params, "R", r, r_inverted)?;
        let s = Rc::new(StoredRelation::build(&disk, params, "S", s, true)?);
        Ok(Database {
            params: params.clone(),
            cost,
            disk,
            r,
            s,
            telemetry: RefCell::new(None),
            durable: false,
        })
    }

    // ---- durable lifecycle ----------------------------------------------

    /// Like [`Database::new`] but on the durable file backend rooted at
    /// `dir`: pages live in real files, every mutation is buffered until
    /// [`Database::commit`] seals it into the write-ahead log. The initial
    /// load is committed before returning, so a crash immediately after
    /// construction reopens to exactly these tuples.
    pub fn create_durable(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
        dir: &Path,
    ) -> Result<Self> {
        Self::build_durable(params, r, s, false, dir)
    }

    /// Durable counterpart of [`Database::new_bilateral`].
    pub fn create_durable_bilateral(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
        dir: &Path,
    ) -> Result<Self> {
        Self::build_durable(params, r, s, true, dir)
    }

    fn build_durable(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
        r_inverted: bool,
        dir: &Path,
    ) -> Result<Self> {
        let cost = Cost::new();
        let backend = DurableBackend::create(dir, params.page_size)?;
        let disk = SimDisk::with_backend(params, cost.clone(), Box::new(backend));
        // The catalog claims file 0 before any relation structure exists.
        let cat = disk.create_file();
        debug_assert_eq!(cat, CATALOG_FILE);
        let r = StoredRelation::build(&disk, params, "R", r, r_inverted)?;
        let s = Rc::new(StoredRelation::build(&disk, params, "S", s, true)?);
        let db = Database {
            params: params.clone(),
            cost,
            disk,
            r,
            s,
            telemetry: RefCell::new(None),
            durable: true,
        };
        db.commit()?;
        Ok(db)
    }

    /// Reopen a durable database from `dir`. WAL recovery runs first
    /// (replaying committed frames, truncating any torn tail — the
    /// `wal.recovered.*` counters and a `RecoveryTriggered` event record
    /// it); then the relations are reattached from the catalog in file 0.
    /// All derived state (MV, JI, hash tables) is gone — rebuild it with
    /// the usual constructors, exactly as at first creation.
    pub fn open_durable(params: &SystemParams, dir: &Path) -> Result<Self> {
        let cost = Cost::new();
        let backend = DurableBackend::open(dir, params.page_size)?;
        let disk = SimDisk::with_backend(params, cost.clone(), Box::new(backend));
        let manifest = catalog::read_catalog(&disk)?;
        let version = manifest.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != CATALOG_VERSION {
            return Err(Error::Corrupt(format!(
                "catalog version {version} (this build reads {CATALOG_VERSION})"
            )));
        }
        let r_json =
            manifest.get("r").ok_or_else(|| Error::Corrupt("catalog missing relation r".into()))?;
        let s_json =
            manifest.get("s").ok_or_else(|| Error::Corrupt("catalog missing relation s".into()))?;
        let r = StoredRelation::open(&disk, params, r_json)?;
        let s = Rc::new(StoredRelation::open(&disk, params, s_json)?);
        Ok(Database {
            params: params.clone(),
            cost,
            disk,
            r,
            s,
            telemetry: RefCell::new(None),
            durable: true,
        })
    }

    /// True when this database sits on a durable (WAL-backed) backend.
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// The catalog manifest describing the current structures.
    fn manifest(&self) -> Json {
        Json::obj()
            .set("version", CATALOG_VERSION)
            .set("r", self.r.catalog_json())
            .set("s", self.s.catalog_json())
    }

    /// Make everything since the last commit durable: serialize the
    /// catalog into file 0, then seal the buffered page writes as one
    /// WAL frame group (page frames + one commit frame), fsynced before
    /// returning. On the in-memory backend this is a cheap no-op that
    /// reports zero frames. The `wal.*` metrics and one I/O charge per
    /// frame (plus one for the commit record) land in the ledger via
    /// the disk wrapper.
    pub fn commit(&self) -> Result<CommitStats> {
        self.commit_with(Durability::Barrier)
    }

    /// [`Database::commit`] with an explicit durability level:
    /// [`Durability::Barrier`] fsyncs before returning;
    /// [`Durability::Deferred`] appends the sealed group to the
    /// group-commit buffer and shares a later barrier's fsync — a crash
    /// before that barrier rolls the deferred commits back wholesale.
    pub fn commit_with(&self, durability: Durability) -> Result<CommitStats> {
        if self.durable {
            catalog::write_catalog(&self.disk, &self.manifest())?;
        }
        self.disk.commit_with(durability)
    }

    /// [`Database::commit`], then truncate the WAL (its contents are fully
    /// applied, so the log restarts empty — this is what bounds log length
    /// between restarts).
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        if self.durable {
            catalog::write_catalog(&self.disk, &self.manifest())?;
        }
        self.disk.checkpoint()
    }

    /// Close the database cleanly: checkpoint (commit + WAL truncate) and
    /// drop. Reopening after `close` replays nothing.
    pub fn close(self) -> Result<()> {
        self.checkpoint()?;
        Ok(())
    }

    /// Arm a simulated crash on the next [`Database::commit`] (test
    /// harness; see [`trijoin_storage::CommitSabotage`]).
    pub fn sabotage_next_commit(&self, mode: CommitSabotage) {
        self.disk.sabotage_next_commit(mode);
    }

    /// System parameters in force.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The shared cost ledger.
    pub fn cost(&self) -> &Cost {
        &self.cost
    }

    /// The simulated disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Relation `R`.
    pub fn r(&self) -> &StoredRelation {
        &self.r
    }

    /// Relation `S` (carries the inverted index on the join attribute).
    pub fn s(&self) -> &StoredRelation {
        &self.s
    }

    /// Mutable access to `R` for applying updates.
    pub fn r_mut(&mut self) -> &mut StoredRelation {
        &mut self.r
    }

    /// Apply one update to `R`, counting it in the metrics registry
    /// (`db.mutations`). Equivalent to `r_mut().apply_update(..)` plus the
    /// observation.
    pub fn apply_r_update(&mut self, upd: &trijoin_exec::Update) -> Result<()> {
        self.disk.metrics().incr("db.mutations");
        let start = self.cost.total();
        let result = self.r.apply_update(&upd.old, &upd.new);
        self.telemetry_on_apply(&start);
        result
    }

    /// Apply one mutation to `R`, counting it in the metrics registry.
    pub fn apply_r_mutation(&mut self, m: &trijoin_exec::Mutation) -> Result<()> {
        self.disk.metrics().incr("db.mutations");
        let start = self.cost.total();
        let result = self.r.apply_mutation(m);
        self.telemetry_on_apply(&start);
        result
    }

    /// Mutable access to `S` for bilateral scenarios. Fails while any
    /// strategy (e.g. an [`EagerView`]) still holds a shared handle to `S`.
    pub fn s_mut(&mut self) -> Result<&mut StoredRelation> {
        Rc::get_mut(&mut self.s).ok_or_else(|| {
            trijoin_common::Error::Invariant(
                "S is shared (an eager view is alive); cannot mutate".into(),
            )
        })
    }

    /// The engine-wide metrics registry (carried by the simulated disk;
    /// every layer holding the disk reports into the same registry).
    pub fn metrics(&self) -> &Metrics {
        self.disk.metrics()
    }

    /// The engine-wide structured-event log.
    pub fn events(&self) -> &EventLog {
        self.disk.events()
    }

    /// Execute `strategy` as one *observed* query: emits query start/end
    /// events, bumps the query counter, records the simulated latency into
    /// the `query.us` histogram, and returns the collected join result.
    pub fn query(&self, strategy: &mut dyn JoinStrategy) -> Result<Vec<ViewTuple>> {
        let start = self.cost.total();
        let recovery_start = self.recovery_counts();
        self.disk.events().emit(
            EventKind::QueryStart,
            format!("strategy={}", strategy.name()),
            start,
        );
        let mut out = Vec::new();
        let result = strategy.execute(&self.r, &self.s, &mut |vt| out.push(vt));
        let end = self.cost.total();
        let detail = match &result {
            Ok(_) => format!("strategy={} tuples={}", strategy.name(), out.len()),
            Err(e) => format!("strategy={} failed: {e}", strategy.name()),
        };
        self.disk.events().emit(EventKind::QueryEnd, detail, end);
        let metrics = self.disk.metrics();
        metrics.incr("db.queries");
        metrics.observe("query.us", end.delta_since(&start).time_us(&self.params) as u64);
        self.telemetry_on_query(strategy.name(), &start, &end, &recovery_start);
        result?;
        Ok(out)
    }

    /// Enable windowed telemetry on this engine (opt-in; see the field
    /// docs). The sampler arms its baseline at the current ledger tick.
    pub fn enable_telemetry(&self, config: TelemetryConfig) {
        let tel = Telemetry::new(config, "engine", "ops");
        tel.tick(ops_tick(&self.cost.total()), self.disk.metrics());
        *self.telemetry.borrow_mut() = Some(EngineTelemetry { tel, audit: None });
    }

    /// Arm the predicted-vs-actual cost audit (enables telemetry with the
    /// default config if [`Database::enable_telemetry`] didn't run first).
    /// `workload` is the measured statistics of the loaded relations (see
    /// `workload::measure_workload`); `calibration` scales every model
    /// prediction — 1.0 audits the stock model, anything far from 1.0
    /// simulates a miscalibrated model so `CostDrift` detection can be
    /// exercised deliberately.
    pub fn enable_cost_audit(&self, workload: Workload, calibration: f64) {
        if self.telemetry.borrow().is_none() {
            self.enable_telemetry(TelemetryConfig::default());
        }
        let unit = Workload { updates: 1.0, ..workload.clone() };
        let apply_unit_us = trijoin_model::mv::cost(&self.params, &unit).term("C1.1") * 1e6;
        if let Some(t) = self.telemetry.borrow_mut().as_mut() {
            t.audit = Some(CostAudit {
                workload,
                calibration,
                apply_unit_us,
                apply_seq: 0,
                last_cycle_seq: BTreeMap::new(),
                predicted: BTreeMap::new(),
            });
        }
    }

    /// Whether telemetry was enabled on this engine.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.borrow().is_some()
    }

    /// Snapshot the telemetry series (`None` when telemetry is off). Does
    /// not force the open window closed — [`Database::run_report`] does.
    pub fn telemetry_series(&self) -> Option<SeriesSnapshot> {
        self.telemetry.borrow().as_ref().map(|t| t.tel.series())
    }

    /// The analytical prediction for one query cycle of a paper strategy
    /// (`None` for ablation strategies the model does not price).
    fn model_report(&self, label: &str, w: &Workload) -> Option<trijoin_model::CostReport> {
        match label {
            "materialized-view" => Some(trijoin_model::mv::cost(&self.params, w)),
            "join-index" => Some(trijoin_model::ji::cost(&self.params, w)),
            "hybrid-hash" => Some(trijoin_model::hh::cost(&self.params, w)),
            _ => None,
        }
    }

    /// Audit one finished query cycle and advance the telemetry clock.
    fn telemetry_on_query(
        &self,
        label: &'static str,
        start: &OpCounts,
        end: &OpCounts,
        recovery_start: &OpCounts,
    ) {
        let alerts = {
            let mut guard = self.telemetry.borrow_mut();
            let Some(t) = guard.as_mut() else { return };
            let actual_us = end.delta_since(start).time_us(&self.params);
            if let Some(audit) = t.audit.as_mut() {
                let pending =
                    audit.apply_seq - audit.last_cycle_seq.get(label).copied().unwrap_or(0);
                let key = (label, pending);
                let (predicted_us, predicted_spill, base_pages) =
                    match audit.predicted.get(&key).copied() {
                        Some(cached) => cached,
                        None => {
                            let w = Workload { updates: pending as f64, ..audit.workload.clone() };
                            let report = self.model_report(label, &w);
                            // Ablation strategies (grace-hash, eager/bilateral
                            // views) have no model: their cycles record with
                            // predicted = 0, which the drift detector treats
                            // as "no prediction".
                            let predicted_us = report
                                .as_ref()
                                .map(|r| audit.calibration * r.total() * 1e6)
                                .unwrap_or(0.0);
                            let (spill, base) = match &report {
                                Some(report) if label == "hybrid-hash" => {
                                    let d = w.derived(&self.params);
                                    let spill = audit.calibration
                                        * (report.term("write spilled partitions")
                                            + report.term("read spilled partitions back"))
                                        * 1e6;
                                    (spill, d.r_pages + d.s_pages)
                                }
                                _ => (0.0, 0.0),
                            };
                            audit.predicted.insert(key, (predicted_us, spill, base));
                            (predicted_us, spill, base)
                        }
                    };
                t.tel.record_audit(&cycle_section(label), predicted_us, actual_us);
                let spilled = self.disk.metrics().gauge("hh.spilled_partitions").unwrap_or(0.0);
                if label == "hybrid-hash" && spilled > 0.0 {
                    // Actual spill I/O ≈ page reads+writes beyond the one
                    // base pass over |R| + |S|.
                    let extra_ios = (end.delta_since(start).ios as f64 - base_pages).max(0.0);
                    t.tel.record_audit(
                        "spill.hybrid-hash",
                        predicted_spill,
                        extra_ios * self.params.io_us,
                    );
                }
                audit.last_cycle_seq.insert(label, audit.apply_seq);
            }
            let recovery = self.recovery_counts().delta_since(recovery_start);
            if !recovery.is_zero() {
                // The model never prices recovery: predicted 0 keeps the
                // section visible in the series without ever drifting.
                t.tel.record_audit("recovery", 0.0, recovery.time_us(&self.params));
            }
            t.tel.tick(ops_tick(end), self.disk.metrics())
        };
        self.emit_drift(&alerts, *end);
    }

    /// Audit one applied update and advance the telemetry clock.
    fn telemetry_on_apply(&self, start: &OpCounts) {
        let end = self.cost.total();
        let alerts = {
            let mut guard = self.telemetry.borrow_mut();
            let Some(t) = guard.as_mut() else { return };
            if let Some(audit) = t.audit.as_mut() {
                audit.apply_seq += 1;
                let actual_us = end.delta_since(start).time_us(&self.params);
                let predicted_us = audit.calibration * audit.apply_unit_us;
                t.tel.record_audit("apply", predicted_us, actual_us);
            }
            t.tel.tick(ops_tick(&end), self.disk.metrics())
        };
        self.emit_drift(&alerts, end);
    }

    fn emit_drift(&self, alerts: &[DriftAlert], at: OpCounts) {
        for alert in alerts {
            self.disk.events().emit(EventKind::CostDrift, alert.detail(), at);
        }
    }

    /// Snapshot the full observability state (params, span tree, metrics,
    /// events) into a serializable [`RunReport`] labelled `name`.
    pub fn run_report(&self, name: impl Into<String>) -> RunReport {
        // Close the open telemetry window first so even a run shorter than
        // one window serializes a series (drift alerts it raises land in
        // the captured event log).
        if let Some(t) = self.telemetry.borrow().as_ref() {
            let end = self.cost.total();
            let alerts = t.tel.force_close(ops_tick(&end), self.disk.metrics());
            self.emit_drift(&alerts, end);
        }
        // Durable engines carry the WAL marker on every report, even right
        // after a `reset_observability` boundary (the in-memory backend
        // never stamps these, keeping golden reports byte-identical).
        if self.disk.wal_enabled() {
            let metrics = self.disk.metrics();
            metrics.gauge_set("wal.enabled", 1.0);
            metrics.gauge_set("wal.len_bytes", self.disk.wal_len_bytes() as f64);
            metrics.gauge_set("wal.apply_lag", self.disk.wal_apply_lag() as f64);
            // Zero-delta adds pin the commit-accounting counters into the
            // registry: the report validator requires them alongside
            // `wal.enabled` even when no commit ran since the last
            // observability reset.
            for counter in ["wal.commits", "wal.fsyncs", "wal.frames_skipped"] {
                metrics.counter_add(counter, 0);
            }
        }
        let mut report = RunReport::capture(
            name,
            &self.params,
            &self.cost,
            self.disk.metrics(),
            self.disk.events(),
        );
        if let Some(t) = self.telemetry.borrow().as_ref() {
            report.series.push(t.tel.series());
        }
        report
    }

    /// Zero the cost ledger (e.g. after setup). Metrics and events are left
    /// alone; use [`Database::reset_observability`] to clear those too.
    pub fn reset_cost(&self) {
        self.cost.reset();
    }

    /// Zero the cost ledger, the metrics registry, and the event log in one
    /// step (a clean measurement boundary).
    pub fn reset_observability(&self) {
        self.cost.reset();
        self.disk.metrics().reset();
        self.disk.events().reset();
        if let Some(t) = self.telemetry.borrow_mut().as_mut() {
            // Telemetry stays enabled but forgets its windows and re-arms
            // at the zeroed ledger; the audit's pending-update bookkeeping
            // restarts with it.
            t.tel.reset();
            t.tel.tick(ops_tick(&self.cost.total()), self.disk.metrics());
            if let Some(audit) = t.audit.as_mut() {
                audit.apply_seq = 0;
                audit.last_cycle_seq.clear();
            }
        }
    }

    /// Install a device-fault plan on the simulated disk (see
    /// [`trijoin_storage::FaultPlan`]); faults fire on subsequent charged
    /// page accesses and strategies recover per their documented paths.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.disk.install_fault_plan(plan);
    }

    /// Clear every pending fault and heal all damaged pages.
    pub fn clear_faults(&self) {
        self.disk.clear_faults();
    }

    /// How many planned faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.disk.faults_fired()
    }

    /// The names of the recovery-related cost sections.
    pub const RECOVERY_SECTIONS: [&'static str; 5] =
        ["mv.recover", "ji.recover", "hh.retry", "hh.recover", "diff.retry"];

    /// Combined operation counts of all recovery work charged so far
    /// (retries, fallback recomputation, cache rebuilds) — zero when no
    /// fault ever disturbed a query.
    pub fn recovery_counts(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for name in Self::RECOVERY_SECTIONS {
            total.add(&self.cost.section_counts(name));
        }
        total
    }

    /// Random page I/Os spent on recovery work so far.
    pub fn recovery_ios(&self) -> u64 {
        self.recovery_counts().ios
    }

    /// Materialize `V = R ⋈ S` and return the MV strategy (§3.2).
    pub fn materialized_view(&self) -> Result<MaterializedView> {
        MaterializedView::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
    }

    /// Build the join index and return the JI strategy (§3.3).
    pub fn join_index(&self) -> Result<JoinIndexStrategy> {
        JoinIndexStrategy::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
    }

    /// The hybrid-hash strategy (§3.4; stateless).
    pub fn hybrid_hash(&self) -> HybridHash {
        HybridHash::new(&self.disk, &self.params, &self.cost)
    }

    /// Grace-hash variant (ablation baseline).
    pub fn grace_hash(&self) -> HybridHash {
        HybridHash::grace(&self.disk, &self.params, &self.cost)
    }

    /// Eagerly-maintained view (ablation baseline: maintenance per
    /// mutation instead of the paper's deferral).
    pub fn eager_view(&self) -> Result<EagerView> {
        EagerView::build(&self.disk, &self.params, &self.cost, &self.r, Rc::clone(&self.s))
    }

    /// Bilateral view (deferred maintenance under mutations to both
    /// relations); requires [`Database::new_bilateral`].
    pub fn bilateral_view(&self) -> Result<BilateralView> {
        BilateralView::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
    }

    /// A select-project view `π(σ_p(R) ⋈ σ_q(S))` (§5 future work).
    pub fn spj_view(&self, def: trijoin_exec::ViewDef) -> Result<MaterializedView> {
        MaterializedView::build_with(&self.disk, &self.params, &self.cost, &self.r, &self.s, def)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("r_tuples", &self.r.len())
            .field("s_tuples", &self.s.len())
            .field("mem_pages", &self.params.mem_pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn tuples(n: u32) -> Vec<BaseTuple> {
        (0..n).map(|i| BaseTuple::padded(Surrogate(i), (i % 7) as u64, 64)).collect()
    }

    #[test]
    fn database_wires_table5_organization() {
        let params = SystemParams { page_size: 512, mem_pages: 32, ..Default::default() };
        let db = Database::new(&params, tuples(200), tuples(150)).unwrap();
        assert_eq!(db.r().len(), 200);
        assert_eq!(db.s().len(), 150);
        assert!(!db.r().has_inverted(), "R has no inverted index per Table 5");
        assert!(db.s().has_inverted(), "S carries the join-attribute index");
        db.reset_cost();
        assert!(db.cost().total().is_zero());
    }

    #[test]
    fn durable_lifecycle_roundtrips_through_reopen() {
        let params = SystemParams { page_size: 512, mem_pages: 32, ..Default::default() };
        let dir = std::env::temp_dir().join(format!("trijoin-db-life-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let db = Database::create_durable(&params, tuples(120), tuples(90), &dir).unwrap();
        assert!(db.is_durable());
        let mut mv = db.materialized_view().unwrap();
        let baseline = db.query(&mut mv).unwrap();
        db.close().unwrap();

        let db = Database::open_durable(&params, &dir).unwrap();
        assert!(db.is_durable());
        assert_eq!(db.r().len(), 120);
        assert_eq!(db.s().len(), 90);
        assert!(db.s().has_inverted() && !db.r().has_inverted());
        // Derived state rebuilds; answers match the pre-restart run.
        let mut mv = db.materialized_view().unwrap();
        let mut after = db.query(&mut mv).unwrap();
        let mut want = baseline.clone();
        let order = |t: &trijoin_common::ViewTuple| (t.r_sur, t.s_sur);
        want.sort_by_key(order);
        after.sort_by_key(order);
        assert_eq!(after, want);
        // Clean close left nothing to replay.
        assert_eq!(db.metrics().counter("wal.recovered.commits"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_mutations_rewind_on_reopen() {
        let params = SystemParams { page_size: 512, mem_pages: 32, ..Default::default() };
        let dir = std::env::temp_dir().join(format!("trijoin-db-rewind-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut db = Database::create_durable(&params, tuples(60), tuples(60), &dir).unwrap();
        let old = db.r().get(Surrogate(3)).unwrap().unwrap();
        let new = BaseTuple::padded(Surrogate(3), 999, 64);
        db.r_mut().apply_update(&old, &new).unwrap();
        db.commit().unwrap();
        // A second mutation stays uncommitted: drop without commit = crash.
        let old2 = db.r().get(Surrogate(4)).unwrap().unwrap();
        db.r_mut().apply_update(&old2, &BaseTuple::padded(Surrogate(4), 888, 64)).unwrap();
        drop(db);

        let db = Database::open_durable(&params, &dir).unwrap();
        assert_eq!(db.r().get(Surrogate(3)).unwrap().unwrap().key, 999, "committed survives");
        assert_eq!(db.r().get(Surrogate(4)).unwrap().unwrap().key, old2.key, "uncommitted rewinds");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strategies_construct_and_agree_on_cardinality() {
        let params = SystemParams { page_size: 512, mem_pages: 32, ..Default::default() };
        let db = Database::new(&params, tuples(100), tuples(100)).unwrap();
        let mut mv = db.materialized_view().unwrap();
        let mut ji = db.join_index().unwrap();
        let mut hh = db.hybrid_hash();
        db.reset_cost();
        use trijoin_exec::execute_collect;
        let a = execute_collect(&mut mv, db.r(), db.s()).unwrap();
        let b = execute_collect(&mut ji, db.r(), db.s()).unwrap();
        let c = execute_collect(&mut hh, db.r(), db.s()).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        // 100 tuples with keys mod 7: each key class squared.
        let want: usize = (0..7u32)
            .map(|k| {
                let n = (0..100u32).filter(|i| i % 7 == k).count();
                n * n
            })
            .sum();
        assert_eq!(a.len(), want);
    }
}
