//! A small database instance wiring the paper's storage organization
//! (Table 5) to the simulated device.

use std::rc::Rc;
use trijoin_common::{
    BaseTuple, Cost, EventKind, EventLog, Metrics, OpCounts, Result, RunReport, SystemParams,
    ViewTuple,
};

use trijoin_exec::{
    BilateralView, EagerView, HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView,
    StoredRelation,
};
use trijoin_storage::{Disk, FaultPlan, SimDisk};

/// One simulated database: a disk, a cost ledger, and the two base
/// relations organized per Table 5 (`R` clustered on its surrogate; `S`
/// clustered on its surrogate plus a non-clustered index on the join
/// attribute).
pub struct Database {
    params: SystemParams,
    cost: Cost,
    disk: Disk,
    r: StoredRelation,
    s: Rc<StoredRelation>,
}

impl Database {
    /// Build from tuple sets. Loading charges I/O; call
    /// [`Database::reset_cost`] before measuring (the paper does not price
    /// initial loading).
    pub fn new(params: &SystemParams, r: Vec<BaseTuple>, s: Vec<BaseTuple>) -> Result<Self> {
        Self::build(params, r, s, false)
    }

    /// Like [`Database::new`] but `R` also carries an inverted index on the
    /// join attribute — the symmetric access path bilateral maintenance
    /// (updates to `S` as well as `R`) requires.
    pub fn new_bilateral(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
    ) -> Result<Self> {
        Self::build(params, r, s, true)
    }

    fn build(
        params: &SystemParams,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
        r_inverted: bool,
    ) -> Result<Self> {
        let cost = Cost::new();
        let disk = SimDisk::new(params, cost.clone());
        let r = StoredRelation::build(&disk, params, "R", r, r_inverted)?;
        let s = Rc::new(StoredRelation::build(&disk, params, "S", s, true)?);
        Ok(Database { params: params.clone(), cost, disk, r, s })
    }

    /// System parameters in force.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The shared cost ledger.
    pub fn cost(&self) -> &Cost {
        &self.cost
    }

    /// The simulated disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Relation `R`.
    pub fn r(&self) -> &StoredRelation {
        &self.r
    }

    /// Relation `S` (carries the inverted index on the join attribute).
    pub fn s(&self) -> &StoredRelation {
        &self.s
    }

    /// Mutable access to `R` for applying updates.
    pub fn r_mut(&mut self) -> &mut StoredRelation {
        &mut self.r
    }

    /// Apply one update to `R`, counting it in the metrics registry
    /// (`db.mutations`). Equivalent to `r_mut().apply_update(..)` plus the
    /// observation.
    pub fn apply_r_update(&mut self, upd: &trijoin_exec::Update) -> Result<()> {
        self.disk.metrics().incr("db.mutations");
        self.r.apply_update(&upd.old, &upd.new)
    }

    /// Apply one mutation to `R`, counting it in the metrics registry.
    pub fn apply_r_mutation(&mut self, m: &trijoin_exec::Mutation) -> Result<()> {
        self.disk.metrics().incr("db.mutations");
        self.r.apply_mutation(m)
    }

    /// Mutable access to `S` for bilateral scenarios. Fails while any
    /// strategy (e.g. an [`EagerView`]) still holds a shared handle to `S`.
    pub fn s_mut(&mut self) -> Result<&mut StoredRelation> {
        Rc::get_mut(&mut self.s).ok_or_else(|| {
            trijoin_common::Error::Invariant(
                "S is shared (an eager view is alive); cannot mutate".into(),
            )
        })
    }

    /// The engine-wide metrics registry (carried by the simulated disk;
    /// every layer holding the disk reports into the same registry).
    pub fn metrics(&self) -> &Metrics {
        self.disk.metrics()
    }

    /// The engine-wide structured-event log.
    pub fn events(&self) -> &EventLog {
        self.disk.events()
    }

    /// Execute `strategy` as one *observed* query: emits query start/end
    /// events, bumps the query counter, records the simulated latency into
    /// the `query.us` histogram, and returns the collected join result.
    pub fn query(&self, strategy: &mut dyn JoinStrategy) -> Result<Vec<ViewTuple>> {
        let start = self.cost.total();
        self.disk.events().emit(
            EventKind::QueryStart,
            format!("strategy={}", strategy.name()),
            start,
        );
        let mut out = Vec::new();
        let result = strategy.execute(&self.r, &self.s, &mut |vt| out.push(vt));
        let end = self.cost.total();
        let detail = match &result {
            Ok(_) => format!("strategy={} tuples={}", strategy.name(), out.len()),
            Err(e) => format!("strategy={} failed: {e}", strategy.name()),
        };
        self.disk.events().emit(EventKind::QueryEnd, detail, end);
        let metrics = self.disk.metrics();
        metrics.incr("db.queries");
        metrics.observe("query.us", end.delta_since(&start).time_us(&self.params) as u64);
        result?;
        Ok(out)
    }

    /// Snapshot the full observability state (params, span tree, metrics,
    /// events) into a serializable [`RunReport`] labelled `name`.
    pub fn run_report(&self, name: impl Into<String>) -> RunReport {
        RunReport::capture(name, &self.params, &self.cost, self.disk.metrics(), self.disk.events())
    }

    /// Zero the cost ledger (e.g. after setup). Metrics and events are left
    /// alone; use [`Database::reset_observability`] to clear those too.
    pub fn reset_cost(&self) {
        self.cost.reset();
    }

    /// Zero the cost ledger, the metrics registry, and the event log in one
    /// step (a clean measurement boundary).
    pub fn reset_observability(&self) {
        self.cost.reset();
        self.disk.metrics().reset();
        self.disk.events().reset();
    }

    /// Install a device-fault plan on the simulated disk (see
    /// [`trijoin_storage::FaultPlan`]); faults fire on subsequent charged
    /// page accesses and strategies recover per their documented paths.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.disk.install_fault_plan(plan);
    }

    /// Clear every pending fault and heal all damaged pages.
    pub fn clear_faults(&self) {
        self.disk.clear_faults();
    }

    /// How many planned faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.disk.faults_fired()
    }

    /// The names of the recovery-related cost sections.
    pub const RECOVERY_SECTIONS: [&'static str; 5] =
        ["mv.recover", "ji.recover", "hh.retry", "hh.recover", "diff.retry"];

    /// Combined operation counts of all recovery work charged so far
    /// (retries, fallback recomputation, cache rebuilds) — zero when no
    /// fault ever disturbed a query.
    pub fn recovery_counts(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for name in Self::RECOVERY_SECTIONS {
            total.add(&self.cost.section_counts(name));
        }
        total
    }

    /// Random page I/Os spent on recovery work so far.
    pub fn recovery_ios(&self) -> u64 {
        self.recovery_counts().ios
    }

    /// Materialize `V = R ⋈ S` and return the MV strategy (§3.2).
    pub fn materialized_view(&self) -> Result<MaterializedView> {
        MaterializedView::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
    }

    /// Build the join index and return the JI strategy (§3.3).
    pub fn join_index(&self) -> Result<JoinIndexStrategy> {
        JoinIndexStrategy::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
    }

    /// The hybrid-hash strategy (§3.4; stateless).
    pub fn hybrid_hash(&self) -> HybridHash {
        HybridHash::new(&self.disk, &self.params, &self.cost)
    }

    /// Grace-hash variant (ablation baseline).
    pub fn grace_hash(&self) -> HybridHash {
        HybridHash::grace(&self.disk, &self.params, &self.cost)
    }

    /// Eagerly-maintained view (ablation baseline: maintenance per
    /// mutation instead of the paper's deferral).
    pub fn eager_view(&self) -> Result<EagerView> {
        EagerView::build(&self.disk, &self.params, &self.cost, &self.r, Rc::clone(&self.s))
    }

    /// Bilateral view (deferred maintenance under mutations to both
    /// relations); requires [`Database::new_bilateral`].
    pub fn bilateral_view(&self) -> Result<BilateralView> {
        BilateralView::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
    }

    /// A select-project view `π(σ_p(R) ⋈ σ_q(S))` (§5 future work).
    pub fn spj_view(&self, def: trijoin_exec::ViewDef) -> Result<MaterializedView> {
        MaterializedView::build_with(&self.disk, &self.params, &self.cost, &self.r, &self.s, def)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("r_tuples", &self.r.len())
            .field("s_tuples", &self.s.len())
            .field("mem_pages", &self.params.mem_pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn tuples(n: u32) -> Vec<BaseTuple> {
        (0..n).map(|i| BaseTuple::padded(Surrogate(i), (i % 7) as u64, 64)).collect()
    }

    #[test]
    fn database_wires_table5_organization() {
        let params = SystemParams { page_size: 512, mem_pages: 32, ..Default::default() };
        let db = Database::new(&params, tuples(200), tuples(150)).unwrap();
        assert_eq!(db.r().len(), 200);
        assert_eq!(db.s().len(), 150);
        assert!(!db.r().has_inverted(), "R has no inverted index per Table 5");
        assert!(db.s().has_inverted(), "S carries the join-attribute index");
        db.reset_cost();
        assert!(db.cost().total().is_zero());
    }

    #[test]
    fn strategies_construct_and_agree_on_cardinality() {
        let params = SystemParams { page_size: 512, mem_pages: 32, ..Default::default() };
        let db = Database::new(&params, tuples(100), tuples(100)).unwrap();
        let mut mv = db.materialized_view().unwrap();
        let mut ji = db.join_index().unwrap();
        let mut hh = db.hybrid_hash();
        db.reset_cost();
        use trijoin_exec::execute_collect;
        let a = execute_collect(&mut mv, db.r(), db.s()).unwrap();
        let b = execute_collect(&mut ji, db.r(), db.s()).unwrap();
        let c = execute_collect(&mut hh, db.r(), db.s()).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        // 100 tuples with keys mod 7: each key class squared.
        let want: usize = (0..7u32)
            .map(|k| {
                let n = (0..100u32).filter(|i| i % 7 == k).count();
                n * n
            })
            .sum();
        assert_eq!(a.len(), want);
    }
}
