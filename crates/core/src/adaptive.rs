//! Self-adapting strategy selection — the paper's closing vision:
//! "a system which used the designer's estimates to initially select among
//! algorithms ... but also maintained usage statistics so that the system
//! could automatically adapt to the appropriate structures and algorithms
//! after a suitable period of time."
//!
//! [`AdaptiveStrategy`] wraps one concrete strategy and, at the end of
//! every query, re-estimates the workload from what it just observed —
//! mutation counts, the measured `Pr_A` fraction, and the *exact* semijoin
//! selectivities read off the result stream — prices all three methods
//! with the §3 cost model, and switches (rebuilding the cache, at full
//! charged cost) when another method is predicted to win by more than a
//! hysteresis factor.

use std::collections::HashSet;

use trijoin_common::{Cost, EventKind, Result, Surrogate, SystemParams, ViewTuple};
use trijoin_exec::{
    HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, Mutation, StoredRelation,
};
use trijoin_model::{all_costs, Method, Workload};
use trijoin_storage::Disk;

/// A strategy that re-selects itself from observed statistics.
pub struct AdaptiveStrategy {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    current: Box<dyn JoinStrategy>,
    kind: Method,
    /// Predicted-cost advantage another method must show before a switch
    /// (e.g. 1.3 = 30% better). Guards against boundary flapping.
    pub hysteresis: f64,
    // Observed since the last query:
    mutations: u64,
    a_changes: u64,
    // Rolling estimates:
    pra_estimate: f64,
    epoch: u64,
    switch_log: Vec<(u64, Method, Method)>,
}

impl AdaptiveStrategy {
    /// Start with `initial` (built and charged by the caller via
    /// `Database`), typically the advisor's heuristic pick.
    pub fn new(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        initial: Box<dyn JoinStrategy>,
        kind: Method,
    ) -> Self {
        AdaptiveStrategy {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            current: initial,
            kind,
            hysteresis: 1.3,
            mutations: 0,
            a_changes: 0,
            pra_estimate: 0.5,
            epoch: 0,
            switch_log: Vec::new(),
        }
    }

    /// The method currently in use.
    pub fn current_method(&self) -> Method {
        self.kind
    }

    /// Every switch performed: `(epoch, from, to)`.
    pub fn switch_log(&self) -> &[(u64, Method, Method)] {
        &self.switch_log
    }

    fn build(
        &self,
        kind: Method,
        r: &StoredRelation,
        s: &StoredRelation,
    ) -> Result<Box<dyn JoinStrategy>> {
        Ok(match kind {
            Method::MaterializedView => {
                Box::new(MaterializedView::build(&self.disk, &self.params, &self.cost, r, s)?)
            }
            Method::JoinIndex => {
                Box::new(JoinIndexStrategy::build(&self.disk, &self.params, &self.cost, r, s)?)
            }
            Method::HybridHash => Box::new(HybridHash::new(&self.disk, &self.params, &self.cost)),
        })
    }

    /// Workload estimate from the epoch just observed.
    fn estimate(
        &self,
        r: &StoredRelation,
        s: &StoredRelation,
        result_tuples: u64,
        distinct_r: u64,
        distinct_s: u64,
    ) -> Workload {
        let nr = (r.len() as f64).max(1.0);
        let ns = (s.len() as f64).max(1.0);
        Workload {
            r_tuples: nr,
            s_tuples: ns,
            tr: r.tuple_bytes() as f64,
            ts: s.tuple_bytes() as f64,
            sr: distinct_r as f64 / nr,
            ss: distinct_s as f64 / ns,
            js: result_tuples as f64 / (nr * ns),
            pra: self.pra_estimate,
            updates: self.mutations as f64,
        }
    }
}

impl JoinStrategy for AdaptiveStrategy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_mutation(&mut self, m: &Mutation) -> Result<()> {
        self.mutations += 1;
        if m.affects_join_index() {
            self.a_changes += 1;
        }
        self.current.on_mutation(m)
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        // Answer the query, measuring exact selectivities off the stream.
        let mut distinct_r: HashSet<Surrogate> = HashSet::new();
        let mut distinct_s: HashSet<Surrogate> = HashSet::new();
        let n = self.current.execute(r, s, &mut |v| {
            distinct_r.insert(v.r_sur);
            distinct_s.insert(v.s_sur);
            sink(v);
        })?;
        self.epoch += 1;

        // Fold the observed Pr_A into the rolling estimate.
        if self.mutations > 0 {
            let observed = self.a_changes as f64 / self.mutations as f64;
            self.pra_estimate = 0.5 * self.pra_estimate + 0.5 * observed;
        }
        let w = self.estimate(r, s, n, distinct_r.len() as u64, distinct_s.len() as u64);
        self.mutations = 0;
        self.a_changes = 0;

        // Re-select. Switching rebuilds the cache at full charged cost.
        let costs = all_costs(&self.params, &w);
        let current_pred = costs
            .iter()
            .find(|c| c.method == self.kind)
            .map(|c| c.total())
            .unwrap_or(f64::INFINITY);
        let (best, best_pred) =
            costs.iter().map(|c| (c.method, c.total())).min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        if best != self.kind && current_pred > self.hysteresis * best_pred {
            self.disk.metrics().incr("adaptive.switches");
            self.disk.events().emit(
                EventKind::StrategySwitch,
                format!(
                    "epoch {}: {:?} -> {:?} (predicted {:.2}s vs {:.2}s)",
                    self.epoch, self.kind, best, current_pred, best_pred
                ),
                self.cost.total(),
            );
            let _g = self.cost.section("adaptive.switch");
            self.current = self.build(best, r, s)?;
            self.switch_log.push((self.epoch, self.kind, best));
            self.kind = best;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::workload::WorkloadSpec;
    use trijoin_exec::{execute_collect, oracle};

    fn spec(sr: f64, rate: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            r_tuples: 1_500,
            s_tuples: 1_500,
            tuple_bytes: 96,
            sr,
            group_size: 4,
            pra: 0.1,
            update_rate: rate,
            seed,
        }
    }

    fn adaptive_over(db: &Database, kind: Method) -> AdaptiveStrategy {
        let initial: Box<dyn JoinStrategy> = match kind {
            Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
            Method::JoinIndex => Box::new(db.join_index().unwrap()),
            Method::HybridHash => Box::new(db.hybrid_hash()),
        };
        AdaptiveStrategy::new(db.disk(), db.params(), db.cost(), initial, kind)
    }

    #[test]
    fn adapts_from_a_bad_initial_choice() {
        // Tiny join, light updates: hash join is a terrible starting pick;
        // the adaptive wrapper must move off it after the first epoch.
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.005, 0.02, 401);
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::HybridHash);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for _epoch in 0..3 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            let got = execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
            let want = oracle::join_tuples(stream.current(), &gen.s);
            oracle::assert_same_join("adaptive", got, want);
        }
        assert_ne!(adaptive.current_method(), Method::HybridHash);
        assert!(!adaptive.switch_log().is_empty());
        assert_eq!(adaptive.switch_log()[0].1, Method::HybridHash);
    }

    #[test]
    fn stays_put_when_the_choice_is_right() {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.002, 0.2, 402); // low SR, busy: join index country
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::JoinIndex);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for _ in 0..3 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
        }
        assert_eq!(adaptive.current_method(), Method::JoinIndex);
        assert!(adaptive.switch_log().is_empty(), "{:?}", adaptive.switch_log());
    }

    #[test]
    fn adaptive_stays_correct_through_a_switch() {
        // Verify tuple-exactness on the epoch where the switch happens.
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.01, 0.3, 403);
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::MaterializedView);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for epoch in 0..4 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            let got = execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
            let want = oracle::join_tuples(stream.current(), &gen.s);
            oracle::assert_same_join(&format!("epoch {epoch}"), got, want);
        }
    }
}
