//! Self-adapting strategy selection — the paper's closing vision:
//! "a system which used the designer's estimates to initially select among
//! algorithms ... but also maintained usage statistics so that the system
//! could automatically adapt to the appropriate structures and algorithms
//! after a suitable period of time."
//!
//! [`AdaptiveStrategy`] wraps one concrete strategy and, at the end of
//! every query, re-estimates the workload from what it just observed —
//! mutation counts, the measured `Pr_A` fraction, and the *exact* semijoin
//! selectivities read off the result stream — prices all three methods
//! with the §3 cost model, and switches when another method is predicted
//! to win by more than a hysteresis factor. The switch is *incremental*:
//! the target cache is built from the rows the incumbent just produced
//! (see [`CachedStrategy::from_rows`]), never from a base-relation rescan.

use std::collections::HashSet;

use trijoin_common::{Cost, EventKind, Result, Surrogate, SystemParams, ViewTuple};
use trijoin_exec::{
    HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, Mutation, StoredRelation,
};
use trijoin_model::{all_costs, Method, Workload};
use trijoin_storage::Disk;

/// One concrete cached strategy, known by variant — the shape a strategy
/// hand-off needs. `Box<dyn JoinStrategy>` hides which cache is live, so a
/// migration could only rebuild from the base relations; this enum lets the
/// owner snapshot the incumbent's structure and destroy it after a switch.
pub enum CachedStrategy {
    /// The materialized view of §3.1.
    Mv(MaterializedView),
    /// The join index of §3.2.
    Ji(JoinIndexStrategy),
    /// The cache-less hybrid-hash join of §3.3.
    Hh(HybridHash),
}

impl CachedStrategy {
    /// Which method this cache implements.
    pub fn method(&self) -> Method {
        match self {
            CachedStrategy::Mv(_) => Method::MaterializedView,
            CachedStrategy::Ji(_) => Method::JoinIndex,
            CachedStrategy::Hh(_) => Method::HybridHash,
        }
    }

    /// The strategy as a trait object (queries, mutation logging).
    pub fn as_dyn(&mut self) -> &mut dyn JoinStrategy {
        match self {
            CachedStrategy::Mv(mv) => mv,
            CachedStrategy::Ji(ji) => ji,
            CachedStrategy::Hh(hh) => hh,
        }
    }

    /// Incremental hand-off: build the `target` cache from join rows the
    /// incumbent already produced (a fresh query answer *is* the view
    /// contents with every pending differential folded in). The only I/O
    /// charged is writing the target structure — no base-relation rescan.
    pub fn from_rows(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        target: Method,
        rows: &[ViewTuple],
        r_tuple_bytes: usize,
        s_tuple_bytes: usize,
    ) -> Result<CachedStrategy> {
        Ok(match target {
            Method::MaterializedView => CachedStrategy::Mv(MaterializedView::build_from_tuples(
                disk,
                params,
                cost,
                rows,
                r_tuple_bytes,
                s_tuple_bytes,
            )?),
            Method::JoinIndex => {
                let entries = rows.iter().map(ViewTuple::ji_entry).collect();
                CachedStrategy::Ji(JoinIndexStrategy::build_from_entries(
                    disk,
                    params,
                    cost,
                    entries,
                    r_tuple_bytes,
                    s_tuple_bytes,
                )?)
            }
            Method::HybridHash => CachedStrategy::Hh(HybridHash::new(disk, params, cost)),
        })
    }

    /// Pages the cached structure occupies (0 for hybrid hash) — what a
    /// hand-off to this cache had to write, and what `migrate.rebuild_pages`
    /// accounts.
    pub fn cached_pages(&self) -> u64 {
        match self {
            CachedStrategy::Mv(mv) => mv.view_pages(),
            CachedStrategy::Ji(ji) => ji.index_pages(),
            CachedStrategy::Hh(_) => 0,
        }
    }

    /// Release the cache's files (view/index plus differential logs).
    pub fn destroy(self) {
        match self {
            CachedStrategy::Mv(mv) => mv.destroy(),
            CachedStrategy::Ji(ji) => ji.destroy(),
            CachedStrategy::Hh(_) => {}
        }
    }
}

/// A strategy that re-selects itself from observed statistics.
pub struct AdaptiveStrategy {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    current: CachedStrategy,
    /// Predicted-cost advantage another method must show before a switch
    /// (e.g. 1.3 = 30% better). Guards against boundary flapping.
    pub hysteresis: f64,
    // Observed since the last query:
    mutations: u64,
    a_changes: u64,
    // Rolling estimates:
    pra_estimate: f64,
    epoch: u64,
    switch_log: Vec<(u64, Method, Method)>,
}

impl AdaptiveStrategy {
    /// Start with `initial` (built and charged by the caller via
    /// `Database`), typically the advisor's heuristic pick.
    pub fn new(disk: &Disk, params: &SystemParams, cost: &Cost, initial: CachedStrategy) -> Self {
        AdaptiveStrategy {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            current: initial,
            hysteresis: 1.3,
            mutations: 0,
            a_changes: 0,
            pra_estimate: 0.5,
            epoch: 0,
            switch_log: Vec::new(),
        }
    }

    /// The method currently in use.
    pub fn current_method(&self) -> Method {
        self.current.method()
    }

    /// Every switch performed: `(ledger_tick, from, to)`. The tick is the
    /// cost ledger's total primitive-op count at the moment of the switch
    /// (see `OpCounts::ticks`) — *not* the query ordinal, so switch points
    /// line up with event timestamps and are comparable across runs with
    /// different query cadence.
    pub fn switch_log(&self) -> &[(u64, Method, Method)] {
        &self.switch_log
    }

    /// Workload estimate from the epoch just observed.
    fn estimate(
        &self,
        r: &StoredRelation,
        s: &StoredRelation,
        result_tuples: u64,
        distinct_r: u64,
        distinct_s: u64,
    ) -> Workload {
        let nr = (r.len() as f64).max(1.0);
        let ns = (s.len() as f64).max(1.0);
        Workload {
            r_tuples: nr,
            s_tuples: ns,
            tr: r.tuple_bytes() as f64,
            ts: s.tuple_bytes() as f64,
            sr: distinct_r as f64 / nr,
            ss: distinct_s as f64 / ns,
            js: result_tuples as f64 / (nr * ns),
            pra: self.pra_estimate,
            updates: self.mutations as f64,
        }
    }
}

impl JoinStrategy for AdaptiveStrategy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_mutation(&mut self, m: &Mutation) -> Result<()> {
        self.mutations += 1;
        if m.affects_join_index() {
            self.a_changes += 1;
        }
        self.current.as_dyn().on_mutation(m)
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        // Answer the query, measuring exact selectivities off the stream
        // and buffering the rows: if this epoch triggers a switch, they are
        // the hand-off source for the new cache (no base-relation rescan).
        let mut distinct_r: HashSet<Surrogate> = HashSet::new();
        let mut distinct_s: HashSet<Surrogate> = HashSet::new();
        let mut rows: Vec<ViewTuple> = Vec::new();
        let n = self.current.as_dyn().execute(r, s, &mut |v| {
            distinct_r.insert(v.r_sur);
            distinct_s.insert(v.s_sur);
            rows.push(v.clone());
            sink(v);
        })?;
        self.epoch += 1;

        // Fold the observed Pr_A into the rolling estimate.
        if self.mutations > 0 {
            let observed = self.a_changes as f64 / self.mutations as f64;
            self.pra_estimate = 0.5 * self.pra_estimate + 0.5 * observed;
        }
        let w = self.estimate(r, s, n, distinct_r.len() as u64, distinct_s.len() as u64);
        self.mutations = 0;
        self.a_changes = 0;

        // Re-select. A switch builds the winner from the rows just
        // streamed — the incumbent's answer with all pending differential
        // folded in — and is charged under `adaptive.switch`.
        let costs = all_costs(&self.params, &w);
        let kind = self.current.method();
        let current_pred =
            costs.iter().find(|c| c.method == kind).map(|c| c.total()).unwrap_or(f64::INFINITY);
        let (best, best_pred) =
            costs.iter().map(|c| (c.method, c.total())).min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        if best != kind && current_pred > self.hysteresis * best_pred {
            let tick = self.cost.total();
            self.disk.metrics().incr("adaptive.switches");
            self.disk.events().emit(
                EventKind::StrategySwitch,
                format!(
                    "epoch {}: {:?} -> {:?} (predicted {:.2}s vs {:.2}s)",
                    self.epoch, kind, best, current_pred, best_pred
                ),
                tick,
            );
            let next = {
                let _g = self.cost.section("adaptive.switch");
                CachedStrategy::from_rows(
                    &self.disk,
                    &self.params,
                    &self.cost,
                    best,
                    &rows,
                    r.tuple_bytes(),
                    s.tuple_bytes(),
                )?
            };
            std::mem::replace(&mut self.current, next).destroy();
            self.switch_log.push((tick.ticks(), kind, best));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::workload::WorkloadSpec;
    use trijoin_exec::{execute_collect, oracle};

    fn spec(sr: f64, rate: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            r_tuples: 1_500,
            s_tuples: 1_500,
            tuple_bytes: 96,
            sr,
            group_size: 4,
            pra: 0.1,
            update_rate: rate,
            seed,
        }
    }

    fn adaptive_over(db: &Database, kind: Method) -> AdaptiveStrategy {
        let initial = match kind {
            Method::MaterializedView => CachedStrategy::Mv(db.materialized_view().unwrap()),
            Method::JoinIndex => CachedStrategy::Ji(db.join_index().unwrap()),
            Method::HybridHash => CachedStrategy::Hh(db.hybrid_hash()),
        };
        AdaptiveStrategy::new(db.disk(), db.params(), db.cost(), initial)
    }

    #[test]
    fn adapts_from_a_bad_initial_choice() {
        // Tiny join, light updates: hash join is a terrible starting pick;
        // the adaptive wrapper must move off it after the first epoch.
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.005, 0.02, 401);
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::HybridHash);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for _epoch in 0..3 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            let got = execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
            let want = oracle::join_tuples(stream.current(), &gen.s);
            oracle::assert_same_join("adaptive", got, want);
        }
        assert_ne!(adaptive.current_method(), Method::HybridHash);
        assert!(!adaptive.switch_log().is_empty());
        assert_eq!(adaptive.switch_log()[0].1, Method::HybridHash);
    }

    #[test]
    fn stays_put_when_the_choice_is_right() {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.002, 0.2, 402); // low SR, busy: join index country
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::JoinIndex);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for _ in 0..3 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
        }
        assert_eq!(adaptive.current_method(), Method::JoinIndex);
        assert!(adaptive.switch_log().is_empty(), "{:?}", adaptive.switch_log());
    }

    #[test]
    fn adaptive_stays_correct_through_a_switch() {
        // Verify tuple-exactness on the epoch where the switch happens.
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.01, 0.3, 403);
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::MaterializedView);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for epoch in 0..4 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            let got = execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
            let want = oracle::join_tuples(stream.current(), &gen.s);
            oracle::assert_same_join(&format!("epoch {epoch}"), got, want);
        }
    }

    /// The switch log records the ledger tick of each switch, not the query
    /// ordinal. On a deterministic workload the switch points are pinned:
    /// they match the `StrategySwitch` event timestamps exactly, they are
    /// strictly increasing, and they sit far above the handful of query
    /// ordinals the old accounting would have recorded.
    #[test]
    fn switch_log_records_ledger_ticks_not_query_ordinals() {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let run = || {
            let s = spec(0.005, 0.02, 401);
            let gen = s.generate();
            let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let mut adaptive = adaptive_over(&db, Method::HybridHash);
            let mut stream = gen.update_stream();
            db.reset_cost();
            db.disk().events().reset();
            let mut queries = 0u64;
            for _ in 0..3 {
                for _ in 0..gen.updates_per_epoch() {
                    let u = stream.next_update();
                    adaptive.on_update(&u).unwrap();
                    db.r_mut().apply_update(&u.old, &u.new).unwrap();
                }
                execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
                queries += 1;
            }
            let events: Vec<u64> = db
                .disk()
                .events()
                .events()
                .into_iter()
                .filter(|e| e.kind == EventKind::StrategySwitch)
                .map(|e| e.at.ticks())
                .collect();
            (adaptive.switch_log().to_vec(), events, queries)
        };
        let (log, event_ticks, queries) = run();
        assert!(!log.is_empty(), "seed 401 must switch off hybrid hash");
        let log_ticks: Vec<u64> = log.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(
            log_ticks, event_ticks,
            "switch log and StrategySwitch events must agree on the ledger tick"
        );
        for (tick, _, _) in &log {
            assert!(
                *tick > queries,
                "tick {tick} looks like a query ordinal (ran {queries} queries)"
            );
        }
        assert!(log_ticks.windows(2).all(|w| w[0] < w[1]), "ticks are monotone: {log_ticks:?}");
        // Pinned: the deterministic workload reproduces the exact switch points.
        let (log2, _, _) = run();
        assert_eq!(log, log2);
    }

    /// A switch is a hand-off, not a rebuild: the new cache is written from
    /// the incumbent's rows, so the switch section charges no base-relation
    /// read I/O beyond the target's own write path.
    #[test]
    fn switching_builds_from_rows_not_base_rescan() {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let s = spec(0.005, 0.02, 404);
        let gen = s.generate();
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut adaptive = adaptive_over(&db, Method::HybridHash);
        let mut stream = gen.update_stream();
        db.reset_cost();
        for _ in 0..3 {
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                adaptive.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            execute_collect(&mut adaptive, db.r(), db.s()).unwrap();
        }
        assert!(!adaptive.switch_log().is_empty());
        let switch_ios = db.cost().section_counts("adaptive.switch").ios;
        let base_pages = db.r().data_pages() + db.s().data_pages();
        assert!(switch_ios > 0, "the hand-off still charges the target's writes");
        assert!(
            switch_ios < base_pages,
            "hand-off charged {switch_ios} I/Os, a base rescan would need ≥ {base_pages}"
        );
    }
}
