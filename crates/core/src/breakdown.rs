//! Figure-5 cost decomposition measured off the engine's span tree.
//!
//! The paper's Figure 5 splits each method's bar into a *white* part — the
//! non-update-related file cost of the basic join algorithm — and a *dark*
//! part — everything update-driven or internal (logging, diff merging,
//! insert joining, write-back, CPU). The engine-side mapping:
//!
//! * MV: white = I/O charged under `mv.scan_view`
//! * JI: white = I/O charged under `ji.read_index` + `ji.fetch_r` + `ji.fetch_s`
//! * HH: white = I/O charged under `hh.execute` (the whole query)
//!
//! The split is computed on *integer* operation counts, so
//! `white + dark == total` exactly; only the conversion to simulated
//! seconds rounds (within 1 ULP).

use trijoin_common::{Cost, Json, OpCounts, SystemParams};
use trijoin_model::Method;

/// Cumulative cost sections whose I/O counts as Figure-5 "white" work for
/// `method`. Everything else the ledger charged is "dark".
pub fn white_sections(method: Method) -> &'static [&'static str] {
    match method {
        Method::MaterializedView => &["mv.scan_view"],
        Method::JoinIndex => &["ji.read_index", "ji.fetch_r", "ji.fetch_s"],
        Method::HybridHash => &["hh.execute"],
    }
}

/// One method's measured white/dark split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig5Breakdown {
    /// Which method the ledger measured.
    pub method: Method,
    /// Everything the ledger charged.
    pub total: OpCounts,
    /// Non-update-related file I/O of the basic algorithm.
    pub white: OpCounts,
    /// `total - white`: update-driven and internal work (exact integer
    /// complement, never negative).
    pub dark: OpCounts,
}

impl Fig5Breakdown {
    /// Split `cost`'s ledger for `method`. The white sections are summed
    /// cumulatively (nested retry work under `hh.execute` stays white,
    /// matching "entire query I/O"), then restricted to their I/O
    /// component.
    pub fn measure(method: Method, cost: &Cost) -> Fig5Breakdown {
        let total = cost.total();
        let mut white_ios = 0u64;
        for name in white_sections(method) {
            white_ios += cost.section_counts(name).ios;
        }
        let white = OpCounts { ios: white_ios, ..OpCounts::default() };
        let dark = total.delta_since(&white);
        Fig5Breakdown { method, total, white, dark }
    }

    /// Simulated seconds of the white part.
    pub fn white_secs(&self, params: &SystemParams) -> f64 {
        self.white.time_secs(params)
    }

    /// Simulated seconds of the dark part.
    pub fn dark_secs(&self, params: &SystemParams) -> f64 {
        self.dark.time_secs(params)
    }

    /// Dark share of the total simulated time, in percent.
    pub fn dark_pct(&self, params: &SystemParams) -> f64 {
        let total = self.total.time_secs(params);
        if total <= 0.0 {
            0.0
        } else {
            100.0 * self.dark_secs(params) / total
        }
    }

    /// JSON form used by `results/fig5_breakdown.json`.
    pub fn to_json(&self, params: &SystemParams) -> Json {
        Json::obj()
            .set("method", self.method.label())
            .set("total_ios", self.total.ios)
            .set("white_ios", self.white.ios)
            .set("dark_ios", self.dark.ios)
            .set("total_secs", self.total.time_secs(params))
            .set("white_secs", self.white_secs(params))
            .set("dark_secs", self.dark_secs(params))
            .set("dark_pct", self.dark_pct(params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_plus_dark_is_exactly_total() {
        let cost = Cost::new();
        {
            let _q = cost.section("hh.execute");
            cost.io(40);
            cost.comp(100);
            {
                let _r = cost.section("hh.retry");
                cost.io(5);
            }
        }
        {
            let _m = cost.section("hh.recover");
            cost.io(7);
            cost.mov(3);
        }
        let b = Fig5Breakdown::measure(Method::HybridHash, &cost);
        // Cumulative: the nested retry I/O stays inside hh.execute's white.
        assert_eq!(b.white.ios, 45);
        assert_eq!(b.dark.ios, 7);
        let mut sum = b.white;
        sum.add(&b.dark);
        assert_eq!(sum, b.total);
    }

    #[test]
    fn ji_white_sums_its_three_sections() {
        let cost = Cost::new();
        for (name, ios) in [("ji.read_index", 3u64), ("ji.fetch_r", 11), ("ji.fetch_s", 17)] {
            let _g = cost.section(name);
            cost.io(ios);
        }
        {
            let _g = cost.section("ji.log");
            cost.io(100);
        }
        let b = Fig5Breakdown::measure(Method::JoinIndex, &cost);
        assert_eq!(b.white.ios, 31);
        assert_eq!(b.dark.ios, 100);
    }
}
