//! Synthetic workload generation with exact selectivity control.
//!
//! The paper's evaluation family fixes `‖R‖ = ‖S‖ = 200 000`, `SS = SR`,
//! and `JS = 100·SR/‖R‖` — i.e. every matching `R` tuple has (on average)
//! 100 join partners. [`WorkloadSpec`] generalizes this: matching tuples
//! are organized in *groups* of `group_size` R-tuples and `group_size`
//! S-tuples sharing one join-key value (so each matching tuple has exactly
//! `group_size` partners), everything else gets unique unmatched keys.
//! With `group_size = 100` this is exactly the paper's family.
//!
//! [`UpdateStream`] then produces the paper's update model: each update
//! replaces one random `R` tuple (delete + insert, same surrogate); with
//! probability `Pr_A` the join attribute changes (to a random matched
//! group's key with the relation's matched fraction, else to a fresh
//! unmatched key), otherwise only the payload changes.

use rand::prelude::*;

use trijoin_common::{rng, BaseTuple, JoinKey, Surrogate};
use trijoin_exec::Update;
use trijoin_model::Workload;

/// Base of the unmatched-key range (far above any group key).
const UNMATCHED_BASE: JoinKey = 1 << 40;

/// Measure the analytical-model [`Workload`] of two raw tuple sets — the
/// data-driven counterpart of [`GeneratedWorkload::measured`] for callers
/// (serving shards, check engines) that hold tuples but no spec. All
/// statistics (`SR`, `SS`, `JS`, tuple sizes) come from the tuples
/// themselves; `pra` and `updates` are caller context the data can't know.
/// Degenerate inputs (an empty relation) yield zero selectivities, never
/// NaN.
pub fn measure_workload(r: &[BaseTuple], s: &[BaseTuple], pra: f64, updates: f64) -> Workload {
    let by_key = |tuples: &[BaseTuple]| {
        let mut m = std::collections::HashMap::new();
        for t in tuples {
            *m.entry(t.key).or_insert(0u64) += 1;
        }
        m
    };
    let rk = by_key(r);
    let sk = by_key(s);
    let mut join_tuples = 0u64;
    let mut matched_r = 0u64;
    for (k, &rc) in &rk {
        if let Some(&sc) = sk.get(k) {
            join_tuples += rc * sc;
            matched_r += rc;
        }
    }
    let matched_s: u64 = sk.iter().filter(|(k, _)| rk.contains_key(*k)).map(|(_, &c)| c).sum();
    // An empty side prices as bare headers so the page math stays finite.
    let tuple_bytes = |tuples: &[BaseTuple]| {
        tuples.first().map(|t| t.serialized_len() as f64).unwrap_or(BaseTuple::HEADER_BYTES as f64)
    };
    let nr = r.len() as f64;
    let ns = s.len() as f64;
    Workload {
        r_tuples: nr,
        s_tuples: ns,
        tr: tuple_bytes(r),
        ts: tuple_bytes(s),
        sr: trijoin_common::telemetry::safe_div(matched_r as f64, nr),
        ss: trijoin_common::telemetry::safe_div(matched_s as f64, ns),
        js: trijoin_common::telemetry::safe_div(join_tuples as f64, nr * ns),
        pra,
        updates,
    }
}

/// Specification of a synthetic scenario.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// `‖R‖`.
    pub r_tuples: u32,
    /// `‖S‖`.
    pub s_tuples: u32,
    /// Serialized tuple size for both relations (`T_R = T_S`).
    pub tuple_bytes: usize,
    /// Target semijoin selectivity `SR` (= `SS` by construction).
    pub sr: f64,
    /// Join partners per matching tuple (the paper's family uses 100).
    pub group_size: u32,
    /// `Pr_A` — probability an update changes the join attribute.
    pub pra: f64,
    /// `‖iR‖/‖R‖` — fraction of R updated between queries.
    pub update_rate: f64,
    /// RNG seed (all randomness derives from it).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's Figure 4 family, scaled down by `scale` (e.g. `scale` =
    /// 10 gives ‖R‖ = ‖S‖ = 20 000). Group size shrinks with scale so the
    /// group count stays meaningful at small sizes.
    pub fn paper_scaled(scale: u32, sr: f64, update_rate: f64, pra: f64, seed: u64) -> Self {
        let n = 200_000 / scale.max(1);
        WorkloadSpec {
            r_tuples: n,
            s_tuples: n,
            tuple_bytes: 200,
            sr,
            group_size: (100 / scale.max(1)).max(2),
            pra,
            update_rate,
            seed,
        }
    }

    /// Like [`WorkloadSpec::generate`] but with Zipf-skewed group sizes:
    /// matched group `i` holds `⌈group_size/(i+1)^theta⌉` tuples per side
    /// (θ = 0 reduces to the uniform paper family; θ ≈ 1 is classic Zipf).
    /// Groups are added until the matched-tuple target `SR·‖R‖` is reached,
    /// so the semijoin selectivities stay on target while the *join*
    /// selectivity concentrates in the hot groups — the skew the paper's
    /// uniform-hash analysis never considers.
    pub fn generate_skewed(&self, theta: f64) -> GeneratedWorkload {
        assert!(theta >= 0.0);
        let target = (self.sr * self.r_tuples as f64).round().max(0.0) as u32;
        let g = self.group_size.max(1);
        let groups = (target / g).max(u32::from(target > 0)) as usize;
        if groups == 0 {
            return self.generate_with_sizes(&[]);
        }
        // Redistribute the same matched total over the same group count by
        // Zipf weights: the hot group grows, the tail thins.
        let weights: Vec<f64> = (0..groups).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let wsum: f64 = weights.iter().sum();
        let mut sizes: Vec<u32> =
            weights.iter().map(|w| ((target as f64) * w / wsum).floor().max(1.0) as u32).collect();
        // Fix rounding drift on the hottest group.
        let assigned: u32 = sizes.iter().sum();
        if assigned < target {
            sizes[0] += target - assigned;
        } else {
            let mut excess = assigned - target;
            for z in sizes.iter_mut() {
                let cut = excess.min(z.saturating_sub(1));
                *z -= cut;
                excess -= cut;
                if excess == 0 {
                    break;
                }
            }
        }
        self.generate_with_sizes(&sizes)
    }

    /// Generate the initial relations and the ground-truth bookkeeping.
    pub fn generate(&self) -> GeneratedWorkload {
        let g = self.group_size.max(1);
        let groups = (((self.sr * self.r_tuples as f64) / g as f64).round() as u32)
            .max(u32::from(self.sr > 0.0));
        let sizes = vec![g; groups as usize];
        self.generate_with_sizes(&sizes)
    }

    /// Shared generator: matched group `i` gets `sizes[i]` tuples on each
    /// side (capped by the relation sizes); the remainder is unmatched.
    fn generate_with_sizes(&self, sizes: &[u32]) -> GeneratedWorkload {
        assert!(self.r_tuples > 0 && self.s_tuples > 0);
        assert!((0.0..=1.0).contains(&self.sr));
        let groups = sizes.len() as u32;
        let mut rn = rng::seeded(rng::derive(self.seed, "generate"));

        // Matched keys: group j contributes sizes[j] tuples with key j on
        // each side; unmatched keys are unique values far above them.
        let mut matched_keys: Vec<JoinKey> = Vec::new();
        for (j, &z) in sizes.iter().enumerate() {
            matched_keys.extend(std::iter::repeat_n(j as JoinKey, z as usize));
        }
        let mut next_unmatched = UNMATCHED_BASE;
        let mut mk_side = |count: u32, rn: &mut StdRng| -> Vec<BaseTuple> {
            let matched = matched_keys.len().min(count as usize);
            let mut keys: Vec<JoinKey> = matched_keys[..matched].to_vec();
            while keys.len() < count as usize {
                keys.push(next_unmatched);
                next_unmatched += 1;
            }
            keys.shuffle(rn); // decorrelate surrogate order from key order
            keys.into_iter()
                .enumerate()
                .map(|(i, key)| BaseTuple::padded(Surrogate(i as u32), key, self.tuple_bytes))
                .collect()
        };
        let r = mk_side(self.r_tuples, &mut rn);
        let s = mk_side(self.s_tuples, &mut rn);

        GeneratedWorkload { spec: self.clone(), r, s, groups, next_unmatched }
    }
}

/// The generated relations plus ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The spec this was generated from.
    pub spec: WorkloadSpec,
    /// Relation R's tuples.
    pub r: Vec<BaseTuple>,
    /// Relation S's tuples.
    pub s: Vec<BaseTuple>,
    /// Number of matched key groups.
    pub groups: u32,
    next_unmatched: JoinKey,
}

impl GeneratedWorkload {
    /// Exact achieved statistics, measured from the data (not the targets) —
    /// these feed the analytical model so engine and model price the same
    /// scenario.
    pub fn measured(&self) -> Workload {
        let s_by_key = |tuples: &[BaseTuple]| {
            let mut m = std::collections::HashMap::new();
            for t in tuples {
                *m.entry(t.key).or_insert(0u64) += 1;
            }
            m
        };
        let rk = s_by_key(&self.r);
        let sk = s_by_key(&self.s);
        let mut join_tuples = 0u64;
        let mut matched_r = 0u64;
        for (k, &rc) in &rk {
            if let Some(&sc) = sk.get(k) {
                join_tuples += rc * sc;
                matched_r += rc;
            }
        }
        let matched_s: u64 = sk.iter().filter(|(k, _)| rk.contains_key(*k)).map(|(_, &c)| c).sum();
        let nr = self.r.len() as f64;
        let ns = self.s.len() as f64;
        Workload {
            r_tuples: nr,
            s_tuples: ns,
            tr: self.spec.tuple_bytes as f64,
            ts: self.spec.tuple_bytes as f64,
            sr: matched_r as f64 / nr,
            ss: matched_s as f64 / ns,
            js: join_tuples as f64 / (nr * ns),
            pra: self.spec.pra,
            updates: (self.spec.update_rate * nr).round(),
        }
    }

    /// Hash-partition both relations on the join attribute into `shards`
    /// disjoint sub-workloads (`(r_i, s_i)` pairs, shard-index order) using
    /// the engine-wide [`trijoin_common::shard_of_key`]. Because the join is
    /// an equi-join on that attribute, every joining pair lands in exactly
    /// one shard: the shard joins are exhaustive and pairwise disjoint, so a
    /// serving layer can answer `R ⋈ S` as the union of per-shard joins.
    pub fn partition(&self, shards: usize) -> Vec<(Vec<BaseTuple>, Vec<BaseTuple>)> {
        assert!(shards > 0, "partition: shard count must be positive");
        let mut parts = vec![(Vec::new(), Vec::new()); shards];
        for t in &self.r {
            parts[trijoin_common::shard_of_key(t.key, shards)].0.push(t.clone());
        }
        for t in &self.s {
            parts[trijoin_common::shard_of_key(t.key, shards)].1.push(t.clone());
        }
        parts
    }

    /// Open an update stream over the current R contents.
    pub fn update_stream(&self) -> UpdateStream {
        UpdateStream {
            current: self.r.clone(),
            groups: self.groups,
            pra: self.spec.pra,
            matched_fraction: self.spec.sr.clamp(0.0, 1.0),
            tuple_bytes: self.spec.tuple_bytes,
            next_unmatched: self.next_unmatched,
            rng: rng::seeded(rng::derive(self.spec.seed, "updates")),
            counter: 0,
        }
    }

    /// Number of updates one query epoch should apply (`‖iR‖`).
    pub fn updates_per_epoch(&self) -> u64 {
        (self.spec.update_rate * self.r.len() as f64).round() as u64
    }

    /// Open a general mutation stream (updates + inserts + deletes) over
    /// the current R contents.
    pub fn mutation_stream(&self, mix: MutationMix) -> MutationStream {
        MutationStream {
            current: self.r.iter().map(|t| (t.sur.0, t.clone())).collect(),
            mix,
            groups: self.groups,
            pra: self.spec.pra,
            matched_fraction: self.spec.sr.clamp(0.0, 1.0),
            tuple_bytes: self.spec.tuple_bytes,
            next_sur: self.r.iter().map(|t| t.sur.0 + 1).max().unwrap_or(0),
            next_unmatched: self.next_unmatched,
            rng: rng::seeded(rng::derive(self.spec.seed, "mutations")),
            counter: 0,
        }
    }
}

/// Relative weights of the three mutation kinds for a general stream —
/// the paper's future-work case of "arbitrary and possibly unequal sets of
/// insertions and deletions".
#[derive(Debug, Clone, Copy)]
pub struct MutationMix {
    /// Weight of in-place updates (the paper's traffic model).
    pub update: f64,
    /// Weight of fresh-tuple insertions.
    pub insert: f64,
    /// Weight of tuple deletions.
    pub delete: f64,
}

impl MutationMix {
    /// The paper's model: updates only.
    pub fn updates_only() -> Self {
        MutationMix { update: 1.0, insert: 0.0, delete: 0.0 }
    }

    /// A churn-heavy mix with unequal insert/delete rates.
    pub fn churn() -> Self {
        MutationMix { update: 0.5, insert: 0.3, delete: 0.2 }
    }
}

/// Generates an arbitrary mutation stream (updates, inserts, deletes) over
/// a live mirror of R.
pub struct MutationStream {
    current: std::collections::BTreeMap<u32, trijoin_common::BaseTuple>,
    mix: MutationMix,
    groups: u32,
    pra: f64,
    matched_fraction: f64,
    tuple_bytes: usize,
    next_sur: u32,
    next_unmatched: JoinKey,
    rng: StdRng,
    counter: u64,
}

impl MutationStream {
    /// Produce the next mutation (and advance the internal mirror). The
    /// stream never empties the relation: deletions are skipped (an update
    /// is produced instead) when fewer than two tuples remain.
    pub fn next_mutation(&mut self) -> trijoin_exec::Mutation {
        use trijoin_exec::Mutation;
        let total = self.mix.update + self.mix.insert + self.mix.delete;
        let roll = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        self.counter += 1;
        if roll < self.mix.insert {
            let sur = Surrogate(self.next_sur);
            self.next_sur += 1;
            let key = self.fresh_key();
            let t =
                BaseTuple::with_payload(sur, key, &self.counter.to_le_bytes(), self.tuple_bytes)
                    .expect("tuple size fits");
            self.current.insert(sur.0, t.clone());
            return Mutation::Insert(t);
        }
        if roll < self.mix.insert + self.mix.delete && self.current.len() > 1 {
            let victim = self.pick_existing();
            let t = self.current.remove(&victim).unwrap();
            return Mutation::Delete(t);
        }
        // Update (also the fallback when deletion would empty the mirror).
        let victim = self.pick_existing();
        let old = self.current[&victim].clone();
        let new_key = if self.rng.gen_bool(self.pra) { self.fresh_key() } else { old.key };
        let new = BaseTuple::with_payload(
            Surrogate(victim),
            new_key,
            &self.counter.to_le_bytes(),
            self.tuple_bytes,
        )
        .expect("tuple size fits");
        self.current.insert(victim, new.clone());
        Mutation::Update(trijoin_exec::Update { old, new })
    }

    fn pick_existing(&mut self) -> u32 {
        let keys: Vec<u32> = self.current.keys().copied().collect();
        keys[self.rng.gen_range(0..keys.len())]
    }

    fn fresh_key(&mut self) -> JoinKey {
        if self.groups > 0 && self.rng.gen_bool(self.matched_fraction) {
            self.rng.gen_range(0..self.groups) as JoinKey
        } else {
            self.next_unmatched += 1;
            self.next_unmatched
        }
    }

    /// The mirror of R after all mutations so far (ground truth).
    pub fn current(&self) -> Vec<trijoin_common::BaseTuple> {
        self.current.values().cloned().collect()
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True when the mirror is empty (never happens via this stream).
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }
}

/// Generates the paper's update model over a live mirror of R.
pub struct UpdateStream {
    current: Vec<BaseTuple>,
    groups: u32,
    pra: f64,
    matched_fraction: f64,
    tuple_bytes: usize,
    next_unmatched: JoinKey,
    rng: StdRng,
    counter: u64,
}

impl UpdateStream {
    /// Produce the next update (and advance the internal mirror).
    pub fn next_update(&mut self) -> Update {
        let idx = self.rng.gen_range(0..self.current.len());
        let old = self.current[idx].clone();
        let new_key = if self.rng.gen_bool(self.pra) {
            // A-changing update: land in a matched group with the
            // relation's matched fraction (keeping selectivities roughly
            // stationary), else on a fresh unmatched key.
            if self.groups > 0 && self.rng.gen_bool(self.matched_fraction) {
                self.rng.gen_range(0..self.groups) as JoinKey
            } else {
                self.next_unmatched += 1;
                self.next_unmatched
            }
        } else {
            old.key
        };
        self.counter += 1;
        let mut payload = [0u8; 8];
        payload.copy_from_slice(&self.counter.to_le_bytes());
        let new = BaseTuple::with_payload(old.sur, new_key, &payload, self.tuple_bytes)
            .expect("tuple size fits");
        self.current[idx] = new.clone();
        Update { old, new }
    }

    /// The mirror of R after all updates so far (ground truth for oracles).
    pub fn current(&self) -> &[BaseTuple] {
        &self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieves_target_selectivities() {
        let spec = WorkloadSpec {
            r_tuples: 10_000,
            s_tuples: 10_000,
            tuple_bytes: 64,
            sr: 0.01,
            group_size: 10,
            pra: 0.1,
            update_rate: 0.05,
            seed: 7,
        };
        let gen = spec.generate();
        let m = gen.measured();
        assert!((m.sr - 0.01).abs() < 0.002, "sr = {}", m.sr);
        assert!((m.ss - 0.01).abs() < 0.002, "ss = {}", m.ss);
        // JS = sr·group/‖S‖: each matching pair group contributes g², so
        // join tuples = groups·g² = sr·‖R‖·g.
        let want_js = 0.01 * 10.0 / 10_000.0;
        assert!((m.js - want_js).abs() / want_js < 0.2, "js = {}", m.js);
        assert_eq!(m.updates, 500.0);
    }

    #[test]
    fn zero_selectivity_yields_empty_join() {
        let spec = WorkloadSpec {
            r_tuples: 500,
            s_tuples: 500,
            tuple_bytes: 48,
            sr: 0.0,
            group_size: 10,
            pra: 0.5,
            update_rate: 0.1,
            seed: 1,
        };
        let m = spec.generate().measured();
        assert_eq!(m.js, 0.0);
        assert_eq!(m.sr, 0.0);
    }

    #[test]
    fn full_selectivity_matches_everything() {
        let spec = WorkloadSpec {
            r_tuples: 400,
            s_tuples: 400,
            tuple_bytes: 48,
            sr: 1.0,
            group_size: 4,
            pra: 0.1,
            update_rate: 0.0,
            seed: 2,
        };
        let m = spec.generate().measured();
        assert!((m.sr - 1.0).abs() < 1e-9);
        assert!((m.js - 4.0 / 400.0).abs() < 1e-9, "every tuple has 4 partners");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec {
            r_tuples: 1000,
            s_tuples: 800,
            tuple_bytes: 64,
            sr: 0.05,
            group_size: 5,
            pra: 0.3,
            update_rate: 0.1,
            seed: 42,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.r, b.r);
        assert_eq!(a.s, b.s);
        let mut ua = a.update_stream();
        let mut ub = b.update_stream();
        for _ in 0..50 {
            assert_eq!(ua.next_update(), ub.next_update());
        }
    }

    #[test]
    fn update_stream_respects_pra_statistically() {
        let spec = WorkloadSpec {
            r_tuples: 2000,
            s_tuples: 2000,
            tuple_bytes: 48,
            sr: 0.1,
            group_size: 5,
            pra: 0.25,
            update_rate: 0.5,
            seed: 9,
        };
        let gen = spec.generate();
        let mut stream = gen.update_stream();
        let n = 2000;
        let mut changed = 0;
        for _ in 0..n {
            let u = stream.next_update();
            assert_eq!(u.old.sur, u.new.sur);
            if u.changes_join_attr() {
                changed += 1;
            }
        }
        let frac = changed as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "Pr_A fraction = {frac}");
        // The mirror tracks every update.
        assert_eq!(stream.current().len(), 2000);
    }

    #[test]
    fn surrogates_are_dense_and_unique() {
        let spec = WorkloadSpec {
            r_tuples: 300,
            s_tuples: 200,
            tuple_bytes: 48,
            sr: 0.2,
            group_size: 4,
            pra: 0.1,
            update_rate: 0.0,
            seed: 3,
        };
        let gen = spec.generate();
        let mut surs: Vec<u32> = gen.r.iter().map(|t| t.sur.0).collect();
        surs.sort_unstable();
        assert_eq!(surs, (0..300).collect::<Vec<u32>>());
    }

    #[test]
    fn skewed_generation_hits_selectivity_targets() {
        let spec = WorkloadSpec {
            r_tuples: 10_000,
            s_tuples: 10_000,
            tuple_bytes: 64,
            sr: 0.05,
            group_size: 50,
            pra: 0.1,
            update_rate: 0.0,
            seed: 13,
        };
        for theta in [0.0, 0.5, 1.0, 2.0] {
            let gen = spec.generate_skewed(theta);
            let m = gen.measured();
            assert!((m.sr - 0.05).abs() < 0.005, "theta={theta}: sr={}", m.sr);
            assert!((m.ss - 0.05).abs() < 0.005, "theta={theta}: ss={}", m.ss);
        }
        // Skew concentrates the join: at theta=2 the join selectivity is
        // dominated by the hot group, so JS drops well below uniform
        // (sum of z_i^2 with the same sum of z_i is maximized when equal...
        // no: sum z^2 is maximized by concentration). Verify it *rises*.
        let js_uniform = spec.generate_skewed(0.0).measured().js;
        let js_skewed = spec.generate_skewed(2.0).measured().js;
        assert!(js_skewed > js_uniform, "skew concentrates pairs: {js_skewed} vs {js_uniform}");
        // theta = 0 equals the uniform family.
        let a = spec.generate_skewed(0.0).measured();
        let b = spec.generate().measured();
        assert!((a.js - b.js).abs() < 1e-9);
    }

    #[test]
    fn partition_is_exhaustive_disjoint_and_join_preserving() {
        let spec = WorkloadSpec {
            r_tuples: 1_500,
            s_tuples: 1_200,
            tuple_bytes: 48,
            sr: 0.1,
            group_size: 6,
            pra: 0.2,
            update_rate: 0.05,
            seed: 21,
        };
        let gen = spec.generate();
        let whole = trijoin_exec::oracle::join_pairs(&gen.r, &gen.s);
        for shards in [1usize, 2, 4, 8] {
            let parts = gen.partition(shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts.iter().map(|(r, _)| r.len()).sum::<usize>(), gen.r.len());
            assert_eq!(parts.iter().map(|(_, s)| s.len()).sum::<usize>(), gen.s.len());
            // Tuples land where their key hashes, so per-shard joins are
            // exhaustive: the union of shard joins equals the whole join.
            let mut union = Vec::new();
            for (idx, (r_i, s_i)) in parts.iter().enumerate() {
                for t in r_i.iter().chain(s_i.iter()) {
                    assert_eq!(trijoin_common::shard_of_key(t.key, shards), idx);
                }
                union.extend(trijoin_exec::oracle::join_pairs(r_i, s_i));
            }
            let mut whole_sorted = whole.clone();
            whole_sorted.sort();
            union.sort();
            assert_eq!(union, whole_sorted, "{shards} shards lost or duplicated pairs");
        }
    }

    #[test]
    fn paper_scaled_family() {
        let spec = WorkloadSpec::paper_scaled(10, 0.01, 0.06, 0.1, 5);
        assert_eq!(spec.r_tuples, 20_000);
        assert_eq!(spec.group_size, 10);
        assert_eq!(spec.tuple_bytes, 200);
        let m = spec.generate().measured();
        // Scaled family keeps ‖V‖ = ‖R‖ at SR = 0.01 (group_size = 100/scale).
        let join = m.js * m.r_tuples * m.s_tuples;
        assert!((join - 20_000.0 * 0.01 * 10.0).abs() < 500.0, "join = {join}");
    }
}
