#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build, full test suite.
# Run from the workspace root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
