#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build, full test suite.
# Run from the workspace root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> run-report schema gate"
# Emit a small run report and validate it: the file must be valid JSON
# with the top-level keys (params, spans, metrics, events) and must
# deserialize back into a RunReport — any schema drift fails CI here.
report=ci_report.json
cargo run --release -q -p trijoin-check --bin trijoin -- \
    run --scale 200 --epochs 1 --report "$report" > /dev/null
for key in params spans metrics events; do
    grep -q "\"$key\"" "$report" || { echo "missing top-level key: $key"; exit 1; }
done
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate "$report"
rm -f "$report"

echo "==> serving-layer gate"
# Run the sharded server at one and four shards (every query is checked
# against the single-engine oracle inside the command), then validate the
# emitted ShardedRunReport — including the shards-sum-to-rollup invariant.
for shards in 1 4; do
    cargo run --release -q -p trijoin-check --bin trijoin -- \
        serve --shards "$shards" --clients 3 --batch 16 --queries 3 \
        --scale 400 --report "$report" > /dev/null
    cargo run --release -q -p trijoin-check --bin trijoin -- report-validate "$report"
    rm -f "$report"
done
# Sustained-load smoke: a fixed update+query stream pushed through a
# tiny submission ring (capacity 2) at four shards, so every enqueue
# contends for a slot and the backpressure path actually runs. Every
# answer is checked against the oracle inside the command, and the
# emitted report must carry the serve.ring.* counters and latency
# gauges that report-validate requires of sharded reports — plus, with
# telemetry on by default, at least two closed windows of time series
# per shard.
cargo run --release -q -p trijoin-check --bin trijoin -- \
    serve --shards 4 --clients 4 --batch 8 --ring 2 --queries 8 \
    --scale 300 --report "$report" > /dev/null
cargo run --release -q -p trijoin-check --bin trijoin -- \
    report-validate "$report" --min-series-windows 2
rm -f "$report"
# The committed scaling results must carry the serve schema and a result
# checksum that is identical across shard counts.
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate results/serve.json

echo "==> live-monitor gate"
# `trijoin top --once --json` must emit a schema-valid sharded report
# with the per-shard telemetry series a live monitor feeds on — the
# scriptable face of the dashboard is held to the same schema as every
# other report in the repo.
cargo run --release -q -p trijoin-check --bin trijoin -- \
    top --shards 4 --clients 4 --batch 8 --ring 2 --queries 8 \
    --scale 300 --once --json > "$report"
cargo run --release -q -p trijoin-check --bin trijoin -- \
    report-validate "$report" --min-series-windows 2
rm -f "$report"

echo "==> wall-clock smoke gate"
# The wall-clock harness must run end-to-end (smoke scale) and emit a
# schema-valid results file, and the simulated ledgers it rides on must
# stay bit-identical to the pinned goldens. Smoke emits its own file so
# the committed full-scale results/wallclock.json is never clobbered.
cargo run --release -q -p trijoin-bench --bin wallclock -- --smoke > /dev/null
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate results/wallclock_smoke.json
rm -f results/wallclock_smoke.json
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate results/wallclock.json
cargo test -q --release -p trijoin-serve --test golden_ledger

echo "==> bench-regression gate"
# Full-scale benches against the committed comparison file: a serve row
# more than 20% qps below the committed after-numbers — or a cycle row
# (including the durable mv_query_cycle_wal) more than 20% above its
# committed seconds — fails CI. (Generous margin — the serve loops pin
# a 2 s floor precisely so scheduler noise stays well inside it.)
cargo run --release -q -p trijoin-bench --bin wallclock -- \
    --baseline BENCH_wallclock.json --gate 20 > /dev/null
rm -f results/wallclock_gate.json

echo "==> simulation gate"
# Deterministic simulation: replay the committed seed corpus (every
# checkpoint must agree across MV / JI / HH / oracle / sharded serve,
# faults included — crash-bearing scripts recover on the file backend),
# then explore one fresh fixed-seed script end to end.
cargo run --release -q -p trijoin-check --bin trijoin -- check --corpus tests/corpus
cargo run --release -q -p trijoin-check --bin trijoin -- check --seed 2026 --ops 160

echo "==> adaptive-serving gate"
# Online strategy migration: a fresh adversarial script (hot-key zipf
# traffic shaped to force migrations) must stay oracle-green at every
# checkpoint with migrations in flight, and an adaptive serve report
# must carry the migrate.* accounting that report-validate requires
# whenever serve.adaptive is set.
cargo run --release -q -p trijoin-check --bin trijoin -- \
    check --adversary zipf --seed 2028 --ops 120
cargo run --release -q -p trijoin-check --bin trijoin -- \
    serve --shards 4 --clients 3 --batch 16 --queries 3 \
    --scale 300 --adaptive --report "$report" > /dev/null
grep -q '"migrate.count"' "$report" || { echo "adaptive serve report lacks migrate.count"; exit 1; }
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate "$report"
rm -f "$report"

echo "==> crash-recovery gate"
# Durability end to end on the real file backend: a fresh crash-heavy
# script (seeded kills mid-batch: cold drops, torn WAL tails, sealed-but-
# unapplied logs) must replay to oracle equivalence through WAL recovery,
# and durable run/serve reports must carry the wal.* accounting that
# report-validate requires whenever wal.enabled is set.
crashdir=$(mktemp -d)
cargo run --release -q -p trijoin-check --bin trijoin -- \
    check --seed 2027 --ops 120 --crash-pct 60 --durable "$crashdir/check"
cargo run --release -q -p trijoin-check --bin trijoin -- \
    run --scale 100 --epochs 2 --durable "$crashdir/run" --report "$report" > /dev/null
grep -q '"wal.commits"' "$report" || { echo "durable run report lacks wal.commits"; exit 1; }
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate "$report"
rm -f "$report"
cargo run --release -q -p trijoin-check --bin trijoin -- \
    serve --shards 4 --clients 3 --batch 16 --queries 3 \
    --scale 300 --durable "$crashdir/serve" --report "$report" > /dev/null
grep -q '"wal.commits"' "$report" || { echo "durable serve report lacks wal.commits"; exit 1; }
grep -q '"wal.fsyncs"' "$report" || { echo "durable serve report lacks wal.fsyncs"; exit 1; }
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate "$report"
rm -f "$report"
# Group commit: the same serve run under --deferred must coalesce commit
# barriers (its report still validates, and carries the fsync/skip-clean
# accounting the validator now requires of any wal.enabled report).
cargo run --release -q -p trijoin-check --bin trijoin -- \
    serve --shards 4 --clients 3 --batch 16 --queries 3 \
    --scale 300 --durable "$crashdir/deferred" --deferred --report "$report" > /dev/null
grep -q '"wal.frames_skipped"' "$report" || { echo "deferred serve report lacks wal.frames_skipped"; exit 1; }
cargo run --release -q -p trijoin-check --bin trijoin -- report-validate "$report"
rm -f "$report"
rm -rf "$crashdir"

echo "CI OK"
