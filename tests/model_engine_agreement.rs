//! Model-versus-engine agreement in *shape*: the analytical model and the
//! measured engine must rank the strategies the same way and respond the
//! same way to the paper's parameters (selectivity, update activity,
//! Pr_A), even though absolute constants differ (the engine's B⁺-trees,
//! batching and netting are real implementations, not closed forms).

use trijoin::{Experiment, Method, SystemParams, WorkloadSpec};

fn params() -> SystemParams {
    SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() }
}

fn spec(sr: f64, rate: f64, pra: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: 4_000,
        s_tuples: 4_000,
        tuple_bytes: 200,
        sr,
        group_size: 5,
        pra,
        update_rate: rate,
        seed,
    }
}

#[test]
fn engine_and_model_agree_on_the_winner_across_regimes() {
    // One point well inside each of the paper's three regions (at this
    // scaled-down size with |M| = 80 pages).
    let cases = [
        (0.002, 0.02, 201), // very low selectivity -> join index
        (0.06, 0.02, 202),  // moderate selectivity, low activity
        (0.9, 0.02, 203),   // extreme selectivity -> hybrid hash
    ];
    for (sr, rate, seed) in cases {
        let exp = Experiment::new(&params(), &spec(sr, rate, 0.1, seed));
        let report = exp.run_epoch().unwrap();
        assert_eq!(
            report.engine_winner(),
            report.model_winner(),
            "sr={sr} rate={rate}: engine picked {:?}, model {:?}\n{:#?}",
            report.engine_winner(),
            report.model_winner(),
            report.outcomes
        );
    }
}

#[test]
fn engine_measurements_track_model_within_a_small_factor() {
    let exp = Experiment::new(&params(), &spec(0.05, 0.05, 0.1, 210));
    let report = exp.run_epoch().unwrap();
    for (method, ratio) in report.ratios() {
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{method}: engine/model ratio {ratio:.2} out of band\n{:#?}",
            report.outcomes
        );
    }
}

#[test]
fn hybrid_hash_is_update_invariant_in_both() {
    let quiet = Experiment::new(&params(), &spec(0.05, 0.0, 0.1, 220)).run_epoch().unwrap();
    let busy = Experiment::new(&params(), &spec(0.05, 0.3, 0.1, 220)).run_epoch().unwrap();
    let hh = |r: &trijoin::EpochReport| {
        r.outcomes.iter().find(|o| o.method == Method::HybridHash).unwrap().engine_secs
    };
    let (a, b) = (hh(&quiet), hh(&busy));
    assert!(
        (a - b).abs() / a < 0.05,
        "hybrid hash should not care about updates: {a:.2} vs {b:.2}"
    );
}

#[test]
fn update_activity_hurts_mv_more_than_ji_in_both() {
    let low = Experiment::new(&params(), &spec(0.02, 0.01, 0.1, 230)).run_epoch().unwrap();
    let high = Experiment::new(&params(), &spec(0.02, 0.4, 0.1, 230)).run_epoch().unwrap();
    let get = |r: &trijoin::EpochReport, m: Method| {
        r.outcomes.iter().find(|o| o.method == m).unwrap().engine_secs
    };
    let mv_growth = get(&high, Method::MaterializedView) / get(&low, Method::MaterializedView);
    let ji_growth = get(&high, Method::JoinIndex) / get(&low, Method::JoinIndex);
    assert!(
        mv_growth > ji_growth,
        "with Pr_A = 0.1 the view (all updates) must suffer more than the \
         index (10% of updates): MV ×{mv_growth:.2} vs JI ×{ji_growth:.2}"
    );
    // And the model agrees on the direction.
    let mv_growth_m =
        get_model(&high, Method::MaterializedView) / get_model(&low, Method::MaterializedView);
    let ji_growth_m = get_model(&high, Method::JoinIndex) / get_model(&low, Method::JoinIndex);
    assert!(mv_growth_m > ji_growth_m);

    fn get_model(r: &trijoin::EpochReport, m: Method) -> f64 {
        r.outcomes.iter().find(|o| o.method == m).unwrap().model_secs
    }
}

#[test]
fn selectivity_hurts_caches_but_not_hash_join_in_both() {
    let lo = Experiment::new(&params(), &spec(0.01, 0.02, 0.1, 240)).run_epoch().unwrap();
    let hi = Experiment::new(&params(), &spec(0.3, 0.02, 0.1, 241)).run_epoch().unwrap();
    let get = |r: &trijoin::EpochReport, m: Method| {
        r.outcomes.iter().find(|o| o.method == m).unwrap().engine_secs
    };
    assert!(get(&hi, Method::MaterializedView) > 3.0 * get(&lo, Method::MaterializedView));
    assert!(get(&hi, Method::JoinIndex) > 2.0 * get(&lo, Method::JoinIndex));
    let hh_lo = get(&lo, Method::HybridHash);
    let hh_hi = get(&hi, Method::HybridHash);
    assert!(
        (hh_hi - hh_lo).abs() / hh_lo < 0.25,
        "hash join is (nearly) selectivity-invariant: {hh_lo:.2} vs {hh_hi:.2}"
    );
}
