//! Sanity of the Figure 4/6 region maps at paper scale (pure model — fast).

use trijoin_common::SystemParams;
use trijoin_model::{cheapest, figure4_grid, figure6_grid, Method, Workload};

#[test]
fn figure4_regions_are_contiguous_bands_per_row() {
    // Along each fixed-activity row, the winner sequence over increasing SR
    // must be JI+ (MV*) HH+ — three bands in the paper's order, the middle
    // one possibly empty at high activity.
    let params = SystemParams::paper_defaults();
    let sr_steps = 25;
    let cells = figure4_grid(&params, sr_steps, 9);
    for (row_idx, row) in cells.chunks(sr_steps).enumerate() {
        let seq: Vec<Method> = row.iter().map(|c| c.winner).collect();
        let mut phase = 0; // 0 = JI, 1 = MV, 2 = HH
        for (i, m) in seq.iter().enumerate() {
            let want_phase = match m {
                Method::JoinIndex => 0,
                Method::MaterializedView => 1,
                Method::HybridHash => 2,
            };
            assert!(
                want_phase >= phase,
                "row {row_idx} (activity {:.3}): non-monotone band at column {i}: {seq:?}",
                row[0].y
            );
            phase = want_phase;
        }
        assert_eq!(seq.first(), Some(&Method::JoinIndex), "row {row_idx} must start JI");
        assert_eq!(seq.last(), Some(&Method::HybridHash), "row {row_idx} must end HH");
    }
}

#[test]
fn figure4_mv_band_shrinks_with_activity() {
    let params = SystemParams::paper_defaults();
    let sr_steps = 25;
    let cells = figure4_grid(&params, sr_steps, 9);
    let mv_per_row: Vec<usize> = cells
        .chunks(sr_steps)
        .map(|row| row.iter().filter(|c| c.winner == Method::MaterializedView).count())
        .collect();
    // Rows are ascending activity: the MV band must (weakly) shrink and
    // eventually close — the paper's Figure 4 top.
    assert!(mv_per_row.first().unwrap() > &0, "MV band exists at 1% activity");
    assert_eq!(*mv_per_row.last().unwrap(), 0, "MV band closes at 100% activity");
    for w in mv_per_row.windows(2) {
        assert!(w[1] <= w[0] + 1, "MV band should not grow with activity: {mv_per_row:?}");
    }
}

#[test]
fn figure6_ji_and_hh_regions_grow_with_memory() {
    let params = SystemParams::paper_defaults();
    let sr_steps = 25;
    let mem_steps = 5;
    let cells = figure6_grid(&params, sr_steps, mem_steps);
    let count = |mem_row: usize, m: Method| {
        cells[mem_row * sr_steps..(mem_row + 1) * sr_steps].iter().filter(|c| c.winner == m).count()
    };
    // Paper: JI exploits memory best (reaches single-pass soonest) — its
    // region grows across the swept range; hash join's region only starts
    // growing once memory approaches |R|·F (~17K pages; "if the memory
    // size were increased by approximately 20K pages, the area where the
    // hash join method is superior would be increased").
    assert!(
        count(mem_steps - 1, Method::JoinIndex) > count(0, Method::JoinIndex),
        "JI region must grow from 1K to 16K pages"
    );
    let p24 = SystemParams { mem_pages: 24_000, ..params.clone() };
    let p16 = SystemParams { mem_pages: 16_000, ..params };
    // At 24K pages hybrid hash runs in one pass and reclaims moderate
    // selectivities it lost at 16K.
    let w = Workload::figure6_point(0.05);
    let hh_24 = trijoin_model::hh::cost(&p24, &w).total();
    let hh_16 = trijoin_model::hh::cost(&p16, &w).total();
    assert!(hh_24 < hh_16, "one-pass hash join must be cheaper: {hh_24} vs {hh_16}");
}

#[test]
fn paper_conclusion_bullets_hold_in_the_model() {
    let p = SystemParams::paper_defaults();
    // "hash join performs well when the selectivity is extremely high"
    assert_eq!(cheapest(&p, &Workload::figure4_point(1.0, 0.06)).0, Method::HybridHash);
    // "its performance is adversely effected by an increase in relation size"
    let small = trijoin_model::hh::cost(&p, &Workload::figure4_point(0.01, 0.06)).total();
    let mut big_w = Workload::figure4_point(0.01, 0.06);
    big_w.r_tuples *= 2.0;
    big_w.s_tuples *= 2.0;
    let big = trijoin_model::hh::cost(&p, &big_w).total();
    assert!(big > 1.8 * small);
    // "join index ... favorably effected by an increase in memory"
    let ji_1k = trijoin_model::ji::cost(&p, &Workload::figure6_point(0.05)).total();
    let p8 = SystemParams { mem_pages: 8_000, ..p.clone() };
    let ji_8k = trijoin_model::ji::cost(&p8, &Workload::figure6_point(0.05)).total();
    assert!(ji_8k < ji_1k);
    // "[JI] adversely effected by an increase in the attribute update
    // probability"
    let mut w = Workload::figure4_point(0.01, 0.2);
    w.pra = 0.05;
    let low_pra = trijoin_model::ji::cost(&p, &w).total();
    w.pra = 0.9;
    let high_pra = trijoin_model::ji::cost(&p, &w).total();
    assert!(high_pra > low_pra);
    // "[MV] is itself unaffected by increasing the join attribute update
    // probability"
    let mut w = Workload::figure4_point(0.01, 0.2);
    w.pra = 0.05;
    let a = trijoin_model::mv::cost(&p, &w).total();
    w.pra = 0.9;
    let b = trijoin_model::mv::cost(&p, &w).total();
    assert!((a - b).abs() < 1e-9);
    // "the size of the area where the MV algorithm performs best varies
    // inversely with the value of JS": double the JS multiplier and the MV
    // pick at a band point flips away from MV.
    let base = Workload::figure4_point(0.02, 0.02);
    assert_eq!(cheapest(&p, &base).0, Method::MaterializedView);
    let mut denser = base.clone();
    denser.js *= 4.0;
    assert_ne!(cheapest(&p, &denser).0, Method::MaterializedView);
}
