//! Golden simulated-ledger test: the engine's *simulated* cost numbers are
//! frozen against committed baselines.
//!
//! Wall-clock optimizations (zero-copy tuple paths, interned metric
//! handles, batched sequential I/O) must never change a single simulated
//! number. This test pins the full [`RunReport`] — span tree, I/O counters,
//! metrics snapshot, event log — for the MV, JI, and HH strategies on a
//! Figure-5-shaped workload, plus the sharded server's result checksum,
//! against JSON baselines committed under `tests/golden/`.
//!
//! Regenerate the baselines (only when a change *intends* to alter the
//! simulated cost model) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p trijoin-serve --test golden_ledger
//! ```
//!
//! The comparison is on the serialized JSON text, so any drift — one extra
//! I/O, one re-ordered span, one renamed counter — fails with a diff
//! pointer rather than silently absorbing a cost-model regression.

use std::path::PathBuf;

use trijoin::{Database, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_common::Json;
use trijoin_serve::{ClientTraffic, ServeConfig, Server};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn regen() -> bool {
    std::env::var("GOLDEN_REGEN").map(|v| v == "1").unwrap_or(false)
}

/// Compare `got` against the committed baseline `name`, or rewrite the
/// baseline when `GOLDEN_REGEN=1`.
fn check_golden(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if regen() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden baseline {} ({e}); regenerate with \
             GOLDEN_REGEN=1 cargo test -p trijoin-serve --test golden_ledger",
            path.display()
        )
    });
    if got != want {
        // Point at the first diverging line so a failure is actionable.
        let line = got.lines().zip(want.lines()).position(|(g, w)| g != w);
        panic!(
            "simulated ledger drifted from golden baseline {} \
             (first differing line: {:?}); if the cost model was *intentionally* \
             changed, regenerate with GOLDEN_REGEN=1",
            path.display(),
            line.map(|i| i + 1),
        );
    }
}

/// The Figure-5 workload shape (6% activity, SR = 1%, seed 55) at half the
/// figure's 4000-tuple scale so the test stays fast in debug builds. The
/// cost *model* is scale-free; what the golden files freeze is every
/// simulated charge the engine makes on this exact input.
fn fig5_spec() -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: 2_000,
        s_tuples: 2_000,
        tuple_bytes: 200,
        sr: 0.01,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.06,
        seed: 55,
    }
}

/// One observed maintenance epoch + query for `method`, exactly the
/// fig5_engine sequence, returning the serialized run report.
fn epoch_report(method: Method) -> String {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    let gen = fig5_spec().generate();
    let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).expect("build database");
    let mut strategy: Box<dyn JoinStrategy> = match method {
        Method::MaterializedView => Box::new(db.materialized_view().expect("build mv")),
        Method::JoinIndex => Box::new(db.join_index().expect("build ji")),
        Method::HybridHash => Box::new(db.hybrid_hash()),
    };
    let mut stream = gen.update_stream();
    db.reset_observability();
    for _ in 0..gen.updates_per_epoch() {
        let u = stream.next_update();
        strategy.on_update(&u).expect("log update");
        db.apply_r_update(&u).expect("apply update");
    }
    db.query(strategy.as_mut()).expect("query");
    db.run_report(format!("golden-{}", strategy.name())).to_json().pretty()
}

#[test]
fn mv_ledger_matches_golden() {
    check_golden("mv_report.json", &epoch_report(Method::MaterializedView));
}

#[test]
fn ji_ledger_matches_golden() {
    check_golden("ji_report.json", &epoch_report(Method::JoinIndex));
}

#[test]
fn hh_ledger_matches_golden() {
    check_golden("hh_report.json", &epoch_report(Method::HybridHash));
}

/// The serve_bench result checksum (FNV-1a over the answer's surrogate
/// pairs, in answer order) at a reduced scale, for shard counts 1 and 4.
/// The checksum must be shard-count-invariant *and* match the committed
/// baseline: sharding may only change wall-clock time, never the answer.
#[test]
fn serve_checksum_matches_golden() {
    const CLIENTS: usize = 3;
    const QUERIES: u64 = 3;
    let spec = WorkloadSpec {
        r_tuples: 400,
        s_tuples: 400,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.01,
        seed: trijoin_common::rng::derive(42, "workload"),
    };
    let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
    let gen = spec.generate();
    let updates_per_query = gen.updates_per_epoch();

    let mut checksums: Vec<u64> = Vec::new();
    for shards in [1usize, 4] {
        let config =
            ServeConfig { batch: 16, seed: 42, ..ServeConfig::new(params.clone(), shards) };
        let server = Server::start(&config, gen.r.clone(), gen.s.clone())
            .unwrap_or_else(|e| panic!("start {shards}-shard server: {e}"));
        let session = server.session().expect("live server");
        let mut traffic = ClientTraffic::split(&gen, &config, CLIENTS);
        let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for q in 0..QUERIES {
            for u in 0..updates_per_query {
                let c = ((q * updates_per_query + u) % CLIENTS as u64) as usize;
                session.update_r(traffic[c].next_mutation()).expect("update");
            }
            let answer = session.query(Method::HybridHash).expect("query");
            for t in &answer {
                for word in [t.r_sur.0 as u64, t.s_sur.0 as u64] {
                    checksum = (checksum ^ word).wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        checksums.push(checksum);
    }
    assert_eq!(checksums[0], checksums[1], "sharding changed the join answer");

    let json = Json::obj()
        .set("figure", "golden_serve")
        .set("queries", QUERIES)
        .set("checksum", format!("{:016x}", checksums[0]).as_str());
    check_golden("serve_checksum.json", &json.pretty());
}
