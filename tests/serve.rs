//! Serving-subsystem integration tests: the sharded, multi-threaded
//! server must be *observationally identical* to a single-engine oracle.
//!
//! The load-bearing invariants:
//!
//! - **Oracle equivalence.** For any shard count and any interleaving of
//!   client submissions, the merged answer at a batch boundary is
//!   tuple-identical to a single engine's join over the same logical
//!   state (hash-partitioning on the join attribute makes shard joins
//!   exhaustive and disjoint; disjoint client ownership makes the final
//!   state interleaving-independent).
//! - **Exact rollup.** Every non-`serve.` metric in the server rollup is
//!   the exact sum of the per-shard metrics, and the rollup totals are
//!   the sum of the shard cost totals.
//! - **Degraded, not dead.** A device-fault plan on one shard leaves the
//!   server answering correctly (the shard recovers through the
//!   strategies' documented recovery paths) and the recovery shows up,
//!   shard-tagged, in the rolled-up event log.

use trijoin::{CachedStrategy, Database, Method, WorkloadSpec};
use trijoin_common::{BaseTuple, EventKind, SystemParams, ViewTuple};
use trijoin_exec::{oracle, Mutation};
use trijoin_serve::{
    merged_current, AdaptiveShard, ClientTraffic, MigrationState, ServeConfig, Server,
};
use trijoin_storage::FaultPlan;

fn params() -> SystemParams {
    SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() }
}

fn config(shards: usize, batch: usize) -> ServeConfig {
    ServeConfig { batch, seed: 7, ..ServeConfig::new(params(), shards) }
}

fn spec(pra: f64) -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: 400,
        s_tuples: 300,
        tuple_bytes: 48,
        sr: 0.15,
        group_size: 5,
        pra,
        update_rate: 0.1,
        seed: 5,
    }
}

/// The ground-truth join of the clients' merged mirror against `s`.
fn oracle_answer(clients: &[ClientTraffic], s: &[BaseTuple]) -> Vec<ViewTuple> {
    oracle::canonicalize(oracle::join_tuples(&merged_current(clients), s))
}

#[test]
fn any_shard_count_matches_the_single_database_oracle() {
    let w = spec(0.3).generate();
    let mut per_shards: Vec<Vec<ViewTuple>> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let cfg = config(shards, 16);
        let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
        let session = server.session().unwrap();
        let mut clients = ClientTraffic::split(&w, &cfg, 3);
        // Interleave the clients' submissions round-robin.
        for _ in 0..20 {
            for c in clients.iter_mut() {
                session.update_r(c.next_mutation()).unwrap();
            }
        }
        let want = oracle_answer(&clients, &w.s);
        for method in Method::all() {
            let got = session.query(method).unwrap();
            assert_eq!(got, want, "{shards} shards, {method}: diverged from oracle");
        }
        per_shards.push(want);
    }
    // Every shard count produced the same answer for the same traffic.
    for answer in &per_shards[1..] {
        assert_eq!(answer, &per_shards[0], "answers must not depend on the shard count");
    }
}

#[test]
fn client_interleaving_does_not_change_the_answer() {
    let w = spec(0.3).generate();
    let cfg = config(4, 8);

    // Run A: strict round-robin across clients.
    let server_a = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session_a = server_a.session().unwrap();
    let mut clients_a = ClientTraffic::split(&w, &cfg, 4);
    for _ in 0..15 {
        for c in clients_a.iter_mut() {
            session_a.update_r(c.next_mutation()).unwrap();
        }
    }

    // Run B: the same per-client streams, submitted client-by-client.
    let server_b = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session_b = server_b.session().unwrap();
    let mut clients_b = ClientTraffic::split(&w, &cfg, 4);
    for c in clients_b.iter_mut() {
        for _ in 0..15 {
            session_b.update_r(c.next_mutation()).unwrap();
        }
    }

    let a = session_a.query(Method::MaterializedView).unwrap();
    let b = session_b.query(Method::MaterializedView).unwrap();
    assert_eq!(a, b, "disjoint client ownership makes order irrelevant");
    assert_eq!(a, oracle_answer(&clients_a, &w.s));
}

#[test]
fn shard_metrics_and_totals_sum_to_the_rollup() {
    let w = spec(0.3).generate();
    let cfg = config(4, 8);
    let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session = server.session().unwrap();
    let mut clients = ClientTraffic::split(&w, &cfg, 2);
    for _ in 0..30 {
        for c in clients.iter_mut() {
            session.update_r(c.next_mutation()).unwrap();
        }
    }
    for method in Method::all() {
        session.query(method).unwrap();
    }
    let report = session.report().unwrap();
    assert_eq!(report.shards.len(), 4);

    // Every counter that appears in any shard sums exactly to the rollup.
    let mut counter_keys: Vec<&str> = report
        .shards
        .iter()
        .flat_map(|s| s.metrics.counters.iter().map(|(k, _)| k.as_str()))
        .collect();
    counter_keys.sort_unstable();
    counter_keys.dedup();
    assert!(!counter_keys.is_empty());
    for key in counter_keys {
        assert!(!key.starts_with("serve."), "shards must not use the scheduler namespace");
        let sum: u64 = report.shards.iter().map(|s| s.metrics.counter(key)).sum();
        assert_eq!(report.rollup.metrics.counter(key), sum, "counter {key} must sum exactly");
    }
    // Each shard ran every query the server ran.
    assert_eq!(report.rollup.metrics.counter("db.queries"), 4 * 3);
    assert_eq!(report.rollup.metrics.counter("serve.queries"), 3);

    // Cost totals aggregate the same way.
    let mut want_ios = 0;
    let mut want_comps = 0;
    for shard in &report.shards {
        want_ios += shard.totals.ios;
        want_comps += shard.totals.comps;
    }
    assert_eq!(report.rollup.totals.ios, want_ios);
    assert_eq!(report.rollup.totals.comps, want_comps);
    assert!(want_ios > 0, "the run must have charged simulated I/O");
}

#[test]
fn fault_on_one_shard_degrades_and_recovers() {
    let w = spec(0.3).generate();
    let cfg = config(4, 8);
    let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session = server.session().unwrap();
    let mut clients = ClientTraffic::split(&w, &cfg, 2);
    for _ in 0..10 {
        for c in clients.iter_mut() {
            session.update_r(c.next_mutation()).unwrap();
        }
    }
    // Drain pending updates, then damage shard 0 mid-run: poison its
    // cached view, forcing the next materialized-view query through the
    // `mv.recover` path. (Installing a plan replaces any active plan, so
    // the scoped poison is the whole schedule here.)
    session.flush().unwrap();
    session.poison_cached_view(0).unwrap();

    // The server stays available and the answer is still exact: the shard
    // recovers through the strategy's own recovery path.
    let want = oracle_answer(&clients, &w.s);
    let got = session.query(Method::MaterializedView).unwrap();
    assert_eq!(got, want, "the faulted shard must recover, not corrupt the answer");

    let report = session.report().unwrap();
    assert!(report.shards[0].metrics.gauge("shard.faults_fired").unwrap() >= 1.0);
    assert_eq!(report.shards[0].metrics.counter("mv.recoveries"), 1);
    for other in &report.shards[1..] {
        assert_eq!(other.metrics.gauge("shard.faults_fired"), Some(0.0));
    }
    // The recovery is visible, shard-tagged, in the rolled-up event log.
    let fault_events: Vec<_> = report
        .rollup
        .events
        .iter()
        .filter(|e| e.kind == EventKind::FaultFired || e.kind == EventKind::RecoveryTriggered)
        .collect();
    assert!(
        fault_events.iter().any(|e| e.kind == EventKind::FaultFired),
        "the fault must appear in the rollup"
    );
    assert!(
        fault_events.iter().any(|e| e.kind == EventKind::RecoveryTriggered),
        "the recovery must appear in the rollup"
    );
    for e in &fault_events {
        assert!(e.detail.starts_with("shard0: "), "events must be shard-tagged: {}", e.detail);
    }

    // A generic client-supplied plan degrades gracefully too: a transient
    // read fault on another shard is absorbed by a retry path.
    session.install_fault_plan(2, FaultPlan::new().fail_nth_read(None, 0)).unwrap();
    assert_eq!(session.query(Method::HybridHash).unwrap(), want, "retry must absorb the fault");

    // Healed shards serve clean queries on every strategy.
    session.clear_faults(0).unwrap();
    session.clear_faults(2).unwrap();
    for method in Method::all() {
        assert_eq!(session.query(method).unwrap(), want);
    }
}

#[test]
fn attribute_changing_updates_route_across_shards() {
    // Pr_A = 1: every update changes the join attribute, so many move
    // their tuple between shards and must split into delete + insert.
    let w = spec(1.0).generate();
    let cfg = config(4, 8);
    let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session = server.session().unwrap();
    let mut clients = ClientTraffic::split(&w, &cfg, 2);
    for _ in 0..40 {
        for c in clients.iter_mut() {
            session.update_r(c.next_mutation()).unwrap();
        }
    }
    let want = oracle_answer(&clients, &w.s);
    for method in Method::all() {
        assert_eq!(session.query(method).unwrap(), want, "{method} diverged");
    }
    let report = session.report().unwrap();
    assert!(
        report.rollup.metrics.counter("serve.updates.cross_shard") > 0,
        "Pr_A = 1 traffic must exercise the cross-shard split path"
    );
}

#[test]
fn s_mutations_invalidate_cached_state_everywhere() {
    let w = spec(0.3).generate();
    let cfg = config(2, 4);
    let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session = server.session().unwrap();
    // Warm the caches, then delete two S tuples through the server.
    session.query(Method::MaterializedView).unwrap();
    let mut s_now = w.s.clone();
    for _ in 0..2 {
        let victim = s_now.remove(3);
        session.update_s(Mutation::Delete(victim)).unwrap();
    }
    let want = oracle::canonicalize(oracle::join_tuples(&w.r, &s_now));
    for method in Method::all() {
        assert_eq!(session.query(method).unwrap(), want, "{method} served a stale S");
    }
    let report = session.report().unwrap();
    assert!(report.rollup.metrics.counter("shard.s_rebuilds") > 0);
    assert_eq!(report.rollup.metrics.counter("shard.s_mutations"), 2);
}

#[test]
fn updates_coalesce_into_differential_batches() {
    // Pr_A = 0 traffic is payload-only: one routed mutation per update,
    // so the batch accounting is exact.
    let w = spec(0.0).generate();
    let cfg = config(2, 8);
    let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session = server.session().unwrap();
    let mut clients = ClientTraffic::split(&w, &cfg, 1);
    for _ in 0..20 {
        session.update_r(clients[0].next_mutation()).unwrap();
    }
    let report = session.report().unwrap();
    // 20 updates at batch size 8: two full batches + the report's flush.
    assert_eq!(report.rollup.metrics.counter("serve.updates.r"), 20);
    assert_eq!(report.rollup.metrics.counter("serve.batches"), 3);
    let hist = report.rollup.metrics.histogram("serve.batch.len").unwrap();
    assert_eq!(hist.count, 3);
    assert_eq!(hist.sum, 20);
    assert_eq!(hist.max, 8);
}

// ---------------------------------------------------------------------
// Adaptive serving: per-shard online strategy migration. The contract is
// the fixed path's, plus: migrations are incremental, never change an
// answer, and roll back cleanly when a device fault lands mid-flight.
// ---------------------------------------------------------------------

/// Update-heavy workload that reliably pulls a shard off its initial
/// materialized view (same shape the adaptive unit tests pin).
fn adaptive_spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: 1_500,
        s_tuples: 1_500,
        tuple_bytes: 96,
        sr: 0.01,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.3,
        seed,
    }
}

#[test]
fn adaptive_server_migrates_and_stays_oracle_equivalent() {
    let w = adaptive_spec(31).generate();
    let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
    let cfg = ServeConfig { batch: 32, seed: 7, adaptive: true, ..ServeConfig::new(params, 2) };
    let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
    let session = server.session().unwrap();
    let mut clients = ClientTraffic::split(&w, &cfg, 2);
    for round in 0..6 {
        for _ in 0..w.updates_per_epoch() / 2 {
            for c in clients.iter_mut() {
                session.update_r(c.next_mutation()).unwrap();
            }
        }
        let want = oracle_answer(&clients, &w.s);
        // The requested method is advisory under --adaptive; whatever the
        // shards currently hold must produce the oracle's rows.
        let got = session.query(Method::HybridHash).unwrap();
        assert_eq!(got, want, "round {round}: adaptive answer diverged mid-migration");
    }
    // A device fault on a shard mid-run: still available, still exact.
    session.install_fault_plan(0, FaultPlan::new().fail_nth_read(None, 0)).unwrap();
    let want = oracle_answer(&clients, &w.s);
    assert_eq!(session.query(Method::MaterializedView).unwrap(), want);
    session.clear_faults(0).unwrap();

    let report = session.report().unwrap();
    let m = &report.rollup.metrics;
    assert_eq!(m.gauge("serve.adaptive"), Some(1.0));
    assert!(m.counter("migrate.count") >= 1, "no shard migrated under an update storm");
    assert!(
        report.shards.iter().any(|s| s.metrics.gauge("shard.strategy").unwrap_or(0.0) != 0.0),
        "at least one shard must have left the initial materialized view"
    );
    for shard in &report.shards {
        assert!(shard.metrics.gauge("shard.migration_state").is_some());
    }
    // The incremental contract at the serving layer: across all completed
    // migrations, pages written for target structures stay under one
    // base-relation pass per migration.
    let ps = cfg.params.page_size as u64;
    let page_bound = |tuples: u64| (tuples * 96).div_ceil(ps);
    let full_rebuild = page_bound(w.r.len() as u64) + page_bound(w.s.len() as u64);
    let rebuilt = m.counter("migrate.rebuild_pages");
    assert!(
        rebuilt < m.counter("migrate.count") * full_rebuild,
        "{rebuilt} pages rebuilt over {} migrations vs {full_rebuild} pages per base rescan",
        m.counter("migrate.count")
    );
    // Migration activity is visible in the rolled-up event log.
    assert!(report.rollup.events.iter().any(|e| e.kind == EventKind::MigrationStep));
    assert!(report.rollup.events.iter().any(|e| e.kind == EventKind::StrategySwitch));
}

/// Direct harness over one shard's controller, so faults can be armed at
/// an exact [`MigrationState`] phase.
struct PhaseHarness {
    db: Database,
    shard: AdaptiveShard,
    gen: trijoin::GeneratedWorkload,
}

impl PhaseHarness {
    fn new(seed: u64) -> (PhaseHarness, trijoin::UpdateStream) {
        let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
        let gen = adaptive_spec(seed).generate();
        let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let shard = AdaptiveShard::new(CachedStrategy::Mv(db.materialized_view().unwrap()));
        db.reset_observability();
        shard.register_metrics(&db);
        let stream = gen.update_stream();
        (PhaseHarness { db, shard, gen }, stream)
    }

    fn apply(&mut self, m: &Mutation) {
        self.shard.on_mutation(&self.db, m).unwrap();
        self.db.apply_r_mutation(m).unwrap();
    }

    fn query(&mut self, stream: &trijoin::UpdateStream) -> Vec<ViewTuple> {
        let mut rows = self.db.query(self.shard.strategy()).unwrap();
        rows.sort_by_key(|t| (t.r_sur, t.s_sur));
        let want = oracle::join_tuples(stream.current(), &self.gen.s);
        oracle::assert_same_join("phase harness", rows.clone(), want);
        self.shard.after_query(&self.db, &rows);
        rows
    }

    /// Run whole epochs (mutations, then an oracle-checked query) until a
    /// migration starts; the controller is left in `Building` because no
    /// advance step has run yet.
    fn walk_to_building(&mut self, stream: &mut trijoin::UpdateStream) {
        for _ in 0..6 {
            for _ in 0..self.gen.updates_per_epoch() {
                let m = Mutation::Update(stream.next_update());
                self.apply(&m);
            }
            self.query(stream);
            if matches!(self.shard.state(), MigrationState::Building { .. }) {
                return;
            }
        }
        panic!("the update storm never started a migration");
    }
}

#[test]
fn write_fault_while_building_rolls_back_to_the_incumbent() {
    let (mut h, mut stream) = PhaseHarness::new(811);
    h.walk_to_building(&mut stream);
    let incumbent = h.shard.current_method();

    // Arm the fault now: staging chunks are in-memory, so the first write
    // the migration issues is the target structure's build — it must fail,
    // and the failure must roll the migration back, not poison the shard.
    h.db.install_fault_plan(FaultPlan::new().fail_nth_write(None, 0));
    for _ in 0..64 {
        h.shard.advance(&h.db);
        if matches!(h.shard.state(), MigrationState::Stable) {
            break;
        }
    }
    assert!(matches!(h.shard.state(), MigrationState::Stable), "rollback must reach Stable");
    assert_eq!(h.db.metrics().counter("migrate.rollbacks"), 1, "the abort must be counted");
    assert_eq!(h.db.metrics().counter("migrate.count"), 0, "no migration completed");
    assert_eq!(h.shard.current_method(), incumbent, "the incumbent must keep serving");
    h.db.clear_faults();

    // The incumbent is undamaged and the controller retries: driving the
    // same traffic on must eventually complete a migration, oracle-green.
    for _ in 0..6 {
        for _ in 0..h.gen.updates_per_epoch() {
            let m = Mutation::Update(stream.next_update());
            h.apply(&m);
        }
        h.query(&stream);
        for _ in 0..64 {
            h.shard.advance(&h.db);
        }
        if h.shard.migrations() >= 1 {
            break;
        }
    }
    assert!(h.shard.migrations() >= 1, "the controller must retry after a rollback");
    assert_eq!(h.db.metrics().counter("migrate.count"), 1);
    h.query(&stream);
}

#[test]
fn abort_while_draining_destroys_the_built_target_and_keeps_the_incumbent() {
    let (mut h, mut stream) = PhaseHarness::new(812);
    h.walk_to_building(&mut stream);
    let incumbent = h.shard.current_method();

    // Advance cleanly through Building until the target is fully built and
    // the controller sits in Draining — the phase where a rollback has a
    // real structure to tear down, not just staged rows.
    for _ in 0..64 {
        h.shard.advance(&h.db);
        if matches!(h.shard.state(), MigrationState::Draining { .. }) {
            break;
        }
    }
    assert!(matches!(h.shard.state(), MigrationState::Draining { .. }), "never reached Draining");

    // Mutations arriving now go to the incumbent and the pending log.
    for _ in 0..48 {
        let m = Mutation::Update(stream.next_update());
        h.apply(&m);
    }
    // An `S` mutation lands before the swap: the migration must abort,
    // destroying the built-but-never-serving target, and the incumbent
    // (plus its pending differential) keeps answering exactly.
    h.shard.on_s_mutation(&h.db);
    assert!(matches!(h.shard.state(), MigrationState::Stable), "drain abort must roll back");
    assert_eq!(h.db.metrics().counter("migrate.rollbacks"), 1);
    assert_eq!(h.db.metrics().counter("migrate.count"), 0);
    assert_eq!(h.shard.current_method(), incumbent);
    h.query(&stream);
}

#[test]
fn serving_runs_are_bit_identical() {
    use trijoin_serve::server::VOLATILE_METRICS;
    let run = || {
        let w = spec(0.3).generate();
        let cfg = config(4, 8);
        let server = Server::start(&cfg, w.r.clone(), w.s.clone()).unwrap();
        let session = server.session().unwrap();
        let mut clients = ClientTraffic::split(&w, &cfg, 3);
        for _ in 0..10 {
            for c in clients.iter_mut() {
                session.update_r(c.next_mutation()).unwrap();
            }
        }
        let rows = session.query(Method::JoinIndex).unwrap();
        let mut report = session.report().unwrap();
        // The ring's drain chunking and the latency percentiles are
        // wall-clock shaped — the server declares exactly which metrics
        // those are; everything else must be bit-identical. Assert the
        // volatile ones were present before scrubbing them out, so the
        // scrub can never silently mask a missing metric.
        let m = &mut report.rollup.metrics;
        for name in VOLATILE_METRICS {
            let present = m.counters.iter().any(|(k, _)| k == name)
                || m.gauges.iter().any(|(k, _)| k == name)
                || m.histograms.iter().any(|(k, _)| k == name);
            assert!(present, "volatile metric {name} missing from the rollup");
        }
        m.counters.retain(|(k, _)| !VOLATILE_METRICS.contains(&k.as_str()));
        m.gauges.retain(|(k, _)| !VOLATILE_METRICS.contains(&k.as_str()));
        m.histograms.retain(|(k, _)| !VOLATILE_METRICS.contains(&k.as_str()));
        // The scheduler's batch-domain series captures those same volatile
        // gauges and drain-shape histograms inside its windows, so it is
        // scrubbed the same way. The merged per-shard engine series sample
        // only simulated state and stay under the bit-identity pin.
        let series = &mut report.rollup.series;
        assert!(series.iter().any(|s| s.name == "serve"), "scheduler series missing");
        assert!(series.iter().any(|s| s.name == "engine"), "engine series missing");
        series.retain(|s| s.name != "serve");
        (rows, report.to_json().dump())
    };
    let (rows_a, report_a) = run();
    let (rows_b, report_b) = run();
    assert_eq!(rows_a, rows_b, "query answers must be bit-identical across reruns");
    assert_eq!(
        report_a, report_b,
        "serialized reports (volatile ring/latency metrics scrubbed) must be bit-identical"
    );
}
