//! End-to-end smoke tests of the public facade: the Section 2 worked
//! example, the advisor, and long-running multi-epoch stability.

use trijoin::{Advisor, Database, JoinStrategy, Method, SystemParams, Workload, WorkloadSpec};
use trijoin_common::codec::{encode_row, string_key, Value};
use trijoin_common::{BaseTuple, Surrogate};
use trijoin_exec::{execute_collect, oracle};

/// The paper's Section 2 archeology example, tuples verbatim from
/// Tables 1 and 2.
fn student_project() -> (Vec<BaseTuple>, Vec<BaseTuple>) {
    let student = |sur: u32, name: &str, major: &str, country: &str| {
        let payload = encode_row(&[
            Value::Str(name.into()),
            Value::Str(major.into()),
            Value::Str(country.into()),
        ]);
        BaseTuple::with_payload(Surrogate(sur), string_key(country), &payload, 100).unwrap()
    };
    let project = |sur: u32, title: &str, sup: &str, city: &str, country: &str| {
        let payload = encode_row(&[
            Value::Str(title.into()),
            Value::Str(sup.into()),
            Value::Str(city.into()),
            Value::Str(country.into()),
        ]);
        BaseTuple::with_payload(Surrogate(sur), string_key(country), &payload, 100).unwrap()
    };
    let students = vec![
        student(10, "S. Bando", "Music", "USA"),
        student(11, "G. Jetson", "Art", "Great Britain"),
        student(12, "C. Falerno", "History", "Italy"),
        student(13, "L. LaPaz", "Art", "Mexico"),
        student(14, "J. Jones", "English", "USA"),
        student(15, "P. Valens", "Archeology", "Mexico"),
    ];
    let projects = vec![
        project(30, "Deforestation", "N. Smith", "Coba", "Mexico"),
        project(31, "Facade Res.", "E. Ruggeri", "Venice", "Italy"),
        project(33, "Mural Res.", "A. Montez", "Tulum", "Mexico"),
        project(34, "Excavation", "M. Cox", "Lima", "Peru"),
    ];
    (students, projects)
}

#[test]
fn section2_example_produces_table3_and_table4() {
    let (students, projects) = student_project();
    let params = SystemParams { page_size: 512, mem_pages: 16, ..Default::default() };
    // R = Project, S = Student (the paper's query lists Project first).
    let db = Database::new(&params, projects, students).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let result = execute_collect(&mut mv, db.r(), db.s()).unwrap();
    // Table 3 has exactly 5 rows.
    assert_eq!(result.len(), 5);
    // Table 4's join index pairs: (030,013) (030,015) (031,012) (033,013)
    // (033,015).
    let mut pairs: Vec<(u32, u32)> = result.iter().map(|v| (v.r_sur.0, v.s_sur.0)).collect();
    pairs.sort();
    assert_eq!(pairs, vec![(30, 13), (30, 15), (31, 12), (33, 13), (33, 15)]);
    let ji_result = execute_collect(&mut ji, db.r(), db.s()).unwrap();
    assert_eq!(ji_result.len(), 5);
    assert_eq!(ji.index_len(), 5);
}

#[test]
fn section2_example_survives_an_update() {
    let (students, projects) = student_project();
    let params = SystemParams { page_size: 512, mem_pages: 16, ..Default::default() };
    let mut db = Database::new(&params, projects.clone(), students).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    // The Excavation project moves from Peru to Mexico: it now matches the
    // two Mexican students.
    let old = db.r().get(Surrogate(34)).unwrap().unwrap();
    let new =
        BaseTuple::with_payload(Surrogate(34), string_key("Mexico"), &old.payload.clone(), 100)
            .unwrap();
    let upd = trijoin::Update { old: old.clone(), new: new.clone() };
    mv.on_update(&upd).unwrap();
    ji.on_update(&upd).unwrap();
    db.r_mut().apply_update(&old, &new).unwrap();
    assert_eq!(execute_collect(&mut mv, db.r(), db.s()).unwrap().len(), 7);
    assert_eq!(execute_collect(&mut ji, db.r(), db.s()).unwrap().len(), 7);
}

#[test]
fn advisor_recommendations_cover_all_rules() {
    let advisor = Advisor::new(&SystemParams::paper_defaults());
    let picks: Vec<Method> = [
        Workload::figure4_point(1.0, 0.05),  // rule (a)
        Workload::figure4_point(0.01, 0.05), // rule (b)
        Workload::figure4_point(0.01, 0.5),  // rule (c)
    ]
    .iter()
    .map(|w| advisor.heuristic(w).method)
    .collect();
    assert_eq!(picks, vec![Method::HybridHash, Method::MaterializedView, Method::JoinIndex]);
}

#[test]
fn ten_epochs_of_churn_stay_correct_and_stable() {
    let params = SystemParams { mem_pages: 32, page_size: 1024, ..Default::default() };
    let spec = WorkloadSpec {
        r_tuples: 600,
        s_tuples: 600,
        tuple_bytes: 96,
        sr: 0.1,
        group_size: 3,
        pra: 0.4,
        update_rate: 0.15,
        seed: 77,
    };
    let gen = spec.generate();
    let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let mut stream = gen.update_stream();
    let mut pages_history = Vec::new();
    for epoch in 0..10 {
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            mv.on_update(&u).unwrap();
            ji.on_update(&u).unwrap();
            db.r_mut().apply_update(&u.old, &u.new).unwrap();
        }
        let want = oracle::join_tuples(stream.current(), &gen.s);
        oracle::assert_same_join(
            &format!("epoch {epoch} mv"),
            execute_collect(&mut mv, db.r(), db.s()).unwrap(),
            want.clone(),
        );
        oracle::assert_same_join(
            &format!("epoch {epoch} ji"),
            execute_collect(&mut ji, db.r(), db.s()).unwrap(),
            want.clone(),
        );
        assert_eq!(mv.view_len(), want.len() as u64);
        assert_eq!(ji.index_len(), want.len() as u64);
        pages_history.push((mv.view_pages(), ji.index_pages()));
    }
    // Storage must not degrade (fragment) without bound under churn: the
    // last epoch's footprint stays within 2x of the first's, given the
    // join cardinality stays in the same ballpark.
    let (v0, j0) = pages_history[0];
    let (v9, j9) = pages_history[9];
    assert!(v9 <= v0 * 2 + 8, "view file bloat: {pages_history:?}");
    assert!(j9 <= j0 * 2 + 8, "join index bloat: {pages_history:?}");
}
