//! Fault matrix: fault sites × strategies. Any single injected device
//! fault on cached join state — view pages, join-index pages, differential
//! runs, spilled runs — must leave every strategy returning the *exact*
//! oracle join, with the recovery work ledgered in a named cost section.
//!
//! Scoping notes: poisoned-read faults target the cached structure's file
//! (a poisoned *base-relation* page is unrecoverable by design — the base
//! relations are the recovery source of truth). Torn-write and transient
//! faults run unscoped: during a query every write lands on cached state
//! (view buckets, index pages, differential runs, spilled runs), and
//! transient reads clear on retry wherever they land.

use trijoin::{
    AdaptiveStrategy, CachedStrategy, Database, JoinStrategy, Method, Mutation, SystemParams,
};
use trijoin_common::{BaseTuple, Surrogate, ViewTuple};
use trijoin_exec::{execute_collect, oracle};
use trijoin_storage::FaultPlan;

fn params() -> SystemParams {
    SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() }
}

fn tuples(n: u32) -> Vec<BaseTuple> {
    (0..n).map(|i| BaseTuple::padded(Surrogate(i), (i % 7) as u64, 64)).collect()
}

/// Apply a mutation batch to `R` and every given strategy, so
/// deferred-maintenance strategies carry pending differential state into
/// the faulted query.
fn pend_mutations(db: &mut Database, strategies: &mut [&mut dyn JoinStrategy]) {
    let mut batch: Vec<Mutation> = Vec::new();
    for i in 0..20u32 {
        batch.push(Mutation::Insert(BaseTuple::padded(Surrogate(1000 + i), (i % 7) as u64, 64)));
    }
    for i in 0..10u32 {
        batch.push(Mutation::Delete(BaseTuple::padded(Surrogate(i * 3), ((i * 3) % 7) as u64, 64)));
    }
    for m in &batch {
        for strategy in strategies.iter_mut() {
            strategy.on_mutation(m).unwrap();
        }
        db.r_mut().apply_mutation(m).unwrap();
    }
}

fn oracle_answer(db: &Database) -> Vec<ViewTuple> {
    let mut r_all = Vec::new();
    db.r().scan(|t| r_all.push(t)).unwrap();
    let mut s_all = Vec::new();
    db.s().scan(|t| s_all.push(t)).unwrap();
    oracle::join_tuples(&r_all, &s_all)
}

/// One scenario: fresh database and strategy, pending mutations, install
/// the plan, query under fault, then query again clean. `expect_fire`
/// additionally asserts exactly-once fault accounting and that recovery
/// work landed in a named cost section.
fn check<S: JoinStrategy>(
    label: &str,
    mut db: Database,
    strategy: &mut S,
    plan: FaultPlan,
    expect_fire: bool,
) {
    pend_mutations(&mut db, &mut [strategy as &mut dyn JoinStrategy]);
    let want = oracle_answer(&db);
    let fired_before = db.faults_fired();
    db.install_fault_plan(plan);
    let got = execute_collect(strategy, db.r(), db.s()).unwrap();
    oracle::assert_same_join(label, got, want.clone());
    if expect_fire {
        assert_eq!(db.faults_fired() - fired_before, 1, "{label}: the fault must fire");
        assert!(
            !db.recovery_counts().is_zero(),
            "{label}: recovery work must appear in a named cost section"
        );
    }
    // A clean follow-up query sees the healed state.
    db.clear_faults();
    let again = execute_collect(strategy, db.r(), db.s()).unwrap();
    oracle::assert_same_join(&format!("{label} (follow-up)"), again, want);
}

fn fresh_db() -> Database {
    Database::new(&params(), tuples(150), tuples(150)).unwrap()
}

// ---------------------------------------------------------------------
// Materialized view.
// ---------------------------------------------------------------------

#[test]
fn matrix_mv_transient_reads() {
    for after in [0u64, 2, 5, 13] {
        let db = fresh_db();
        let mut mv = db.materialized_view().unwrap();
        let plan = FaultPlan::new().fail_nth_read(None, after);
        check(&format!("mv/transient-read@{after}"), db, &mut mv, plan, true);
    }
}

#[test]
fn matrix_mv_transient_writes() {
    for after in [0u64, 1, 5] {
        let db = fresh_db();
        let mut mv = db.materialized_view().unwrap();
        let plan = FaultPlan::new().fail_nth_write(None, after);
        check(&format!("mv/transient-write@{after}"), db, &mut mv, plan, true);
    }
}

#[test]
fn matrix_mv_poisoned_view_reads() {
    for after in [0u64, 7] {
        let db = fresh_db();
        let mut mv = db.materialized_view().unwrap();
        let plan = FaultPlan::new().poison_nth_read(Some(mv.view_file()), after);
        check(&format!("mv/poison-view@{after}"), db, &mut mv, plan, true);
    }
}

#[test]
fn matrix_mv_torn_writes() {
    for after in [0u64, 2] {
        let db = fresh_db();
        let mut mv = db.materialized_view().unwrap();
        let plan = FaultPlan::new().torn_write(None, after);
        check(&format!("mv/torn-write@{after}"), db, &mut mv, plan, true);
    }
}

#[test]
fn matrix_mv_seeded_plans() {
    for seed in [1u64, 2, 1990] {
        let db = fresh_db();
        let mut mv = db.materialized_view().unwrap();
        let plan = FaultPlan::from_seed(seed, &[mv.view_file()]);
        check(&format!("mv/seeded@{seed}"), db, &mut mv, plan, false);
    }
}

// ---------------------------------------------------------------------
// Join index.
// ---------------------------------------------------------------------

#[test]
fn matrix_ji_transient_reads() {
    for after in [0u64, 2, 5, 13] {
        let db = fresh_db();
        let mut ji = db.join_index().unwrap();
        let plan = FaultPlan::new().fail_nth_read(None, after);
        check(&format!("ji/transient-read@{after}"), db, &mut ji, plan, true);
    }
}

#[test]
fn matrix_ji_transient_writes() {
    for after in [0u64, 1, 5] {
        let db = fresh_db();
        let mut ji = db.join_index().unwrap();
        let plan = FaultPlan::new().fail_nth_write(None, after);
        check(&format!("ji/transient-write@{after}"), db, &mut ji, plan, true);
    }
}

#[test]
fn matrix_ji_poisoned_index_reads() {
    for after in [0u64, 7] {
        let db = fresh_db();
        let mut ji = db.join_index().unwrap();
        let plan = FaultPlan::new().poison_nth_read(Some(ji.index_file()), after);
        check(&format!("ji/poison-index@{after}"), db, &mut ji, plan, true);
    }
}

#[test]
fn matrix_ji_torn_writes() {
    for after in [0u64, 2] {
        let db = fresh_db();
        let mut ji = db.join_index().unwrap();
        let plan = FaultPlan::new().torn_write(None, after);
        check(&format!("ji/torn-write@{after}"), db, &mut ji, plan, true);
    }
}

#[test]
fn matrix_ji_seeded_plans() {
    for seed in [1u64, 2, 1990] {
        let db = fresh_db();
        let mut ji = db.join_index().unwrap();
        let plan = FaultPlan::from_seed(seed, &[ji.index_file()]);
        check(&format!("ji/seeded@{seed}"), db, &mut ji, plan, false);
    }
}

// ---------------------------------------------------------------------
// Hybrid hash (spilled-run faults; no cached structure to poison).
// ---------------------------------------------------------------------

#[test]
fn matrix_hh_transient_reads() {
    for after in [0u64, 2, 5, 13] {
        let db = fresh_db();
        let mut hh = db.hybrid_hash();
        let plan = FaultPlan::new().fail_nth_read(None, after);
        check(&format!("hh/transient-read@{after}"), db, &mut hh, plan, true);
    }
}

#[test]
fn matrix_hh_transient_spill_writes() {
    // During a hybrid-hash query every write is a spilled-run page.
    for after in [0u64, 1, 4] {
        let db = fresh_db();
        let mut hh = db.hybrid_hash();
        let plan = FaultPlan::new().fail_nth_write(None, after);
        check(&format!("hh/transient-write@{after}"), db, &mut hh, plan, true);
    }
}

#[test]
fn matrix_hh_torn_spill_writes() {
    for after in [0u64, 2] {
        let db = fresh_db();
        let mut hh = db.hybrid_hash();
        let plan = FaultPlan::new().torn_write(None, after);
        check(&format!("hh/torn-write@{after}"), db, &mut hh, plan, true);
    }
}

// ---------------------------------------------------------------------
// Adaptive wrapper: the matrix composes with online strategy selection.
// The wrapper serves through whatever it currently caches, so each fault
// must be absorbed by the incumbent's documented recovery path exactly as
// it is when the strategy is used bare.
// ---------------------------------------------------------------------

fn adaptive_over(db: &Database, kind: Method) -> AdaptiveStrategy {
    let initial = match kind {
        Method::MaterializedView => CachedStrategy::Mv(db.materialized_view().unwrap()),
        Method::JoinIndex => CachedStrategy::Ji(db.join_index().unwrap()),
        Method::HybridHash => CachedStrategy::Hh(db.hybrid_hash()),
    };
    AdaptiveStrategy::new(db.disk(), db.params(), db.cost(), initial)
}

#[test]
fn matrix_adaptive_transient_reads() {
    for kind in Method::all() {
        for after in [0u64, 5] {
            let db = fresh_db();
            let mut adaptive = adaptive_over(&db, kind);
            let plan = FaultPlan::new().fail_nth_read(None, after);
            check(
                &format!("adaptive[{kind}]/transient-read@{after}"),
                db,
                &mut adaptive,
                plan,
                true,
            );
        }
    }
}

#[test]
fn matrix_adaptive_transient_writes() {
    for kind in Method::all() {
        for after in [0u64, 1] {
            let db = fresh_db();
            let mut adaptive = adaptive_over(&db, kind);
            let plan = FaultPlan::new().fail_nth_write(None, after);
            check(
                &format!("adaptive[{kind}]/transient-write@{after}"),
                db,
                &mut adaptive,
                plan,
                true,
            );
        }
    }
}

#[test]
fn matrix_adaptive_torn_writes() {
    for kind in Method::all() {
        let db = fresh_db();
        let mut adaptive = adaptive_over(&db, kind);
        let plan = FaultPlan::new().torn_write(None, 2);
        check(&format!("adaptive[{kind}]/torn-write@2"), db, &mut adaptive, plan, true);
    }
}

#[test]
fn matrix_adaptive_poisoned_cache_reads() {
    // Poison the incumbent's cached file specifically: the recovery must
    // run through the wrapper without disturbing its statistics.
    let db = fresh_db();
    let mv = db.materialized_view().unwrap();
    let view_file = mv.view_file();
    let mut adaptive =
        AdaptiveStrategy::new(db.disk(), db.params(), db.cost(), CachedStrategy::Mv(mv));
    let plan = FaultPlan::new().poison_nth_read(Some(view_file), 0);
    check("adaptive[mv]/poison-view@0", db, &mut adaptive, plan, true);
}

// ---------------------------------------------------------------------
// Cross-cutting accounting.
// ---------------------------------------------------------------------

#[test]
fn recovery_sections_are_named_and_attributed() {
    // A poisoned view read must charge into `mv.recover` specifically, and
    // the database-level summary must see it.
    let db = fresh_db();
    let mut mv = db.materialized_view().unwrap();
    db.install_fault_plan(FaultPlan::new().poison_nth_read(Some(mv.view_file()), 0));
    let _ = execute_collect(&mut mv, db.r(), db.s()).unwrap();
    let sections: Vec<String> = db.cost().sections().into_iter().map(|(n, _)| n).collect();
    assert!(
        sections.iter().any(|n| n == "mv.recover"),
        "mv.recover must be a named section, got {sections:?}"
    );
    assert!(db.recovery_ios() > 0, "recovery I/O must be attributed");
    assert!(Database::RECOVERY_SECTIONS.contains(&"mv.recover"));
}

#[test]
fn no_fault_means_no_recovery_cost() {
    let mut db = fresh_db();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let mut hh = db.hybrid_hash();
    pend_mutations(&mut db, &mut [&mut mv, &mut ji, &mut hh]);
    let _ = execute_collect(&mut mv, db.r(), db.s()).unwrap();
    let _ = execute_collect(&mut ji, db.r(), db.s()).unwrap();
    let _ = execute_collect(&mut hh, db.r(), db.s()).unwrap();
    assert!(
        db.recovery_counts().is_zero(),
        "healthy runs must charge nothing to recovery sections"
    );
}

// ---------------------------------------------------------------------
// Durable (file) backend: the fault matrix composes with the WAL path.
// ---------------------------------------------------------------------

/// Scratch store for one durable-backend scenario, wiped on entry so
/// reruns start clean.
fn fresh_durable_db(name: &str) -> Database {
    let dir = std::env::temp_dir().join(format!("trijoin-faults-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Database::create_durable(&params(), tuples(150), tuples(150), &dir).unwrap()
}

/// Fault gating lives in the disk wrapper, not the backend, so the exact
/// plans the in-memory matrix recovers from must also recover on the
/// file backend — transient, poisoned, and torn faults alike.
#[test]
fn matrix_composes_with_the_durable_backend() {
    for after in [0u64, 5] {
        let db = fresh_durable_db(&format!("mv-transient-{after}"));
        let mut mv = db.materialized_view().unwrap();
        let plan = FaultPlan::new().fail_nth_read(None, after);
        check(&format!("durable/mv/transient-read@{after}"), db, &mut mv, plan, true);
    }
    {
        let db = fresh_durable_db("ji-poison");
        let mut ji = db.join_index().unwrap();
        let plan = FaultPlan::new().poison_nth_read(Some(ji.index_file()), 0);
        check("durable/ji/poison-index@0", db, &mut ji, plan, true);
    }
    {
        let db = fresh_durable_db("hh-torn");
        let mut hh = db.hybrid_hash();
        let plan = FaultPlan::new().torn_write(None, 2);
        check("durable/hh/torn-write@2", db, &mut hh, plan, true);
    }
}

/// A torn tail injected straight into the log file — garbage bytes after
/// the last sealed commit, as a crashed writer would leave — must be
/// detected and truncated by recovery, with the committed state intact.
#[test]
fn wal_recovery_heals_an_injected_torn_tail() {
    use std::io::Write;

    let dir = std::env::temp_dir().join(format!("trijoin-faults-{}-torn-tail", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::create_durable(&params(), tuples(150), tuples(150), &dir).unwrap();
    pend_mutations(&mut db, &mut []);
    db.commit().unwrap();
    let want = oracle_answer(&db);
    drop(db);

    // Inject the torn tail: a plausible-looking but unsealed byte suffix.
    let wal_path = dir.join("wal.log");
    let clean_len = std::fs::metadata(&wal_path).unwrap().len();
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal_path).unwrap();
    f.write_all(&[0xABu8; 137]).unwrap();
    drop(f);
    assert!(std::fs::metadata(&wal_path).unwrap().len() > clean_len);

    let db = Database::open_durable(&params(), &dir).unwrap();
    assert!(
        db.metrics().counter("wal.recovered.torn_bytes") >= 137,
        "recovery must account the truncated tail"
    );
    let mut hh = db.hybrid_hash();
    let got = execute_collect(&mut hh, db.r(), db.s()).unwrap();
    oracle::assert_same_join("torn-tail heal", got, want);
}
