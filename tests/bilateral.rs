//! Bilateral maintenance: the view stays exact when *both* relations
//! mutate between queries — the general `V'` expression of §3.2 the paper
//! scopes out of its analysis.

use rand::prelude::*;
use std::collections::HashMap;

use trijoin::{Database, JoinStrategy, Mutation, SystemParams, Update};
use trijoin_common::{rng, BaseTuple, Surrogate};
use trijoin_exec::{execute_collect, oracle};

const TUPLE: usize = 80;

struct Mirror {
    map: HashMap<u32, BaseTuple>,
    next_sur: u32,
}

impl Mirror {
    fn new(tuples: &[BaseTuple]) -> Self {
        Mirror {
            map: tuples.iter().map(|t| (t.sur.0, t.clone())).collect(),
            next_sur: tuples.iter().map(|t| t.sur.0 + 1).max().unwrap_or(0),
        }
    }

    fn tuples(&self) -> Vec<BaseTuple> {
        self.map.values().cloned().collect()
    }

    fn random_mutation(&mut self, rn: &mut StdRng, key_domain: u64, counter: u64) -> Mutation {
        let roll: f64 = rn.gen();
        let fresh_key = |rn: &mut StdRng| {
            if rn.gen_bool(0.7) {
                rn.gen_range(0..key_domain)
            } else {
                5_000_000 + rn.gen_range(0u64..1000)
            }
        };
        if roll < 0.2 {
            let sur = Surrogate(self.next_sur);
            self.next_sur += 1;
            let key = fresh_key(rn);
            let t = BaseTuple::with_payload(sur, key, &counter.to_le_bytes(), TUPLE).unwrap();
            self.map.insert(sur.0, t.clone());
            Mutation::Insert(t)
        } else if roll < 0.35 && self.map.len() > 2 {
            let mut surs: Vec<u32> = self.map.keys().copied().collect();
            surs.sort_unstable();
            let sur = surs[rn.gen_range(0..surs.len())];
            Mutation::Delete(self.map.remove(&sur).unwrap())
        } else {
            let mut surs: Vec<u32> = self.map.keys().copied().collect();
            surs.sort_unstable();
            let sur = surs[rn.gen_range(0..surs.len())];
            let old = self.map[&sur].clone();
            let key = if rn.gen_bool(0.5) { fresh_key(rn) } else { old.key };
            let new = BaseTuple::with_payload(Surrogate(sur), key, &counter.to_le_bytes(), TUPLE)
                .unwrap();
            self.map.insert(sur, new.clone());
            Mutation::Update(Update { old, new })
        }
    }
}

fn mk_side(n: u32, key_domain: u64, seed: u64) -> Vec<BaseTuple> {
    let mut rn = rng::seeded(seed);
    (0..n)
        .map(|i| {
            let key = if rn.gen_bool(0.8) {
                rn.gen_range(0..key_domain)
            } else {
                5_000_000 + rn.gen_range(0u64..1000)
            };
            BaseTuple::padded(Surrogate(i), key, TUPLE)
        })
        .collect()
}

#[test]
fn bilateral_view_tracks_mutations_on_both_sides() {
    let params = SystemParams { mem_pages: 40, page_size: 1024, ..Default::default() };
    let r0 = mk_side(800, 10, 501);
    let s0 = mk_side(700, 10, 502);
    let mut db = Database::new_bilateral(&params, r0.clone(), s0.clone()).unwrap();
    let mut view = db.bilateral_view().unwrap();
    let mut hh = db.hybrid_hash();
    let mut r_mirror = Mirror::new(&r0);
    let mut s_mirror = Mirror::new(&s0);
    let mut rn = rng::seeded(503);

    for epoch in 0..4 {
        for i in 0..120u64 {
            if rn.gen_bool(0.5) {
                let m = r_mirror.random_mutation(&mut rn, 10, epoch * 1000 + i);
                view.on_mutation(&m).unwrap();
                db.r_mut().apply_mutation(&m).unwrap();
            } else {
                let m = s_mirror.random_mutation(&mut rn, 10, epoch * 1000 + i);
                view.on_s_mutation(&m).unwrap();
                db.s_mut().unwrap().apply_mutation(&m).unwrap();
            }
        }
        let want = oracle::join_tuples(&r_mirror.tuples(), &s_mirror.tuples());
        let got = execute_collect(&mut view, db.r(), db.s()).unwrap();
        oracle::assert_same_join(&format!("epoch {epoch} bilateral"), got, want.clone());
        assert_eq!(view.view_len(), want.len() as u64);
        // Hybrid hash recomputes and must agree.
        let got_hh = execute_collect(&mut hh, db.r(), db.s()).unwrap();
        oracle::assert_same_join(&format!("epoch {epoch} hh"), got_hh, want);
    }
}

#[test]
fn s_only_mutations() {
    let params = SystemParams { mem_pages: 40, page_size: 1024, ..Default::default() };
    let r0 = mk_side(400, 8, 511);
    let s0 = mk_side(400, 8, 512);
    let mut db = Database::new_bilateral(&params, r0.clone(), s0.clone()).unwrap();
    let mut view = db.bilateral_view().unwrap();
    let mut s_mirror = Mirror::new(&s0);
    let mut rn = rng::seeded(513);
    for i in 0..150u64 {
        let m = s_mirror.random_mutation(&mut rn, 8, i);
        view.on_s_mutation(&m).unwrap();
        db.s_mut().unwrap().apply_mutation(&m).unwrap();
    }
    let want = oracle::join_tuples(&r0, &s_mirror.tuples());
    let got = execute_collect(&mut view, db.r(), db.s()).unwrap();
    oracle::assert_same_join("s-only", got, want);
}

#[test]
fn correlated_both_side_churn_on_the_same_keys() {
    // R and S tuples hopping on and off the same key simultaneously —
    // exercises the (iR ⋈ iS) and (dR ⋈ dS) corners of the V' algebra.
    let params = SystemParams { mem_pages: 32, page_size: 512, ..Default::default() };
    let r0 = mk_side(100, 4, 521);
    let s0 = mk_side(100, 4, 522);
    let mut db = Database::new_bilateral(&params, r0.clone(), s0.clone()).unwrap();
    let mut view = db.bilateral_view().unwrap();
    let mut r_mirror = Mirror::new(&r0);
    let mut s_mirror = Mirror::new(&s0);

    // Insert an (r, s) pair on a brand-new key, then delete both before
    // the query — net effect must be nil; then insert another pair that
    // stays.
    let key = 777u64;
    let mk = |sur: u32, counter: u64| {
        BaseTuple::with_payload(Surrogate(sur), key, &counter.to_le_bytes(), TUPLE).unwrap()
    };
    let r_new = mk(900, 1);
    let s_new = mk(901, 2);
    for (is_r, m) in [
        (true, Mutation::Insert(r_new.clone())),
        (false, Mutation::Insert(s_new.clone())),
        (true, Mutation::Delete(r_new.clone())),
        (false, Mutation::Delete(s_new.clone())),
    ] {
        if is_r {
            view.on_mutation(&m).unwrap();
            db.r_mut().apply_mutation(&m).unwrap();
            match &m {
                Mutation::Insert(t) => {
                    r_mirror.map.insert(t.sur.0, t.clone());
                }
                Mutation::Delete(t) => {
                    r_mirror.map.remove(&t.sur.0);
                }
                _ => {}
            }
        } else {
            view.on_s_mutation(&m).unwrap();
            db.s_mut().unwrap().apply_mutation(&m).unwrap();
            match &m {
                Mutation::Insert(t) => {
                    s_mirror.map.insert(t.sur.0, t.clone());
                }
                Mutation::Delete(t) => {
                    s_mirror.map.remove(&t.sur.0);
                }
                _ => {}
            }
        }
    }
    // A lasting correlated pair.
    let r_keep = mk(910, 3);
    let s_keep = mk(911, 4);
    view.on_mutation(&Mutation::Insert(r_keep.clone())).unwrap();
    db.r_mut().insert(&r_keep).unwrap();
    r_mirror.map.insert(r_keep.sur.0, r_keep);
    view.on_s_mutation(&Mutation::Insert(s_keep.clone())).unwrap();
    db.s_mut().unwrap().insert(&s_keep).unwrap();
    s_mirror.map.insert(s_keep.sur.0, s_keep);

    let want = oracle::join_tuples(&r_mirror.tuples(), &s_mirror.tuples());
    let got = execute_collect(&mut view, db.r(), db.s()).unwrap();
    oracle::assert_same_join("correlated churn", got, want);
    // The lasting pair must be present exactly once.
    let pair_count = view.view_len();
    let second = execute_collect(&mut view, db.r(), db.s()).unwrap();
    assert_eq!(second.len() as u64, pair_count, "stable across idempotent queries");
}

#[test]
fn bilateral_requires_symmetric_access_path() {
    let params = SystemParams { mem_pages: 32, page_size: 512, ..Default::default() };
    let r0 = mk_side(50, 4, 531);
    let s0 = mk_side(50, 4, 532);
    // A plain database (no inverted index on R) cannot host a bilateral
    // view.
    let db = Database::new(&params, r0, s0).unwrap();
    assert!(db.bilateral_view().is_err());
}

#[test]
fn s_mut_is_guarded_while_shared() {
    let params = SystemParams { mem_pages: 32, page_size: 512, ..Default::default() };
    let r0 = mk_side(50, 4, 541);
    let s0 = mk_side(50, 4, 542);
    let mut db = Database::new(&params, r0, s0).unwrap();
    let eager = db.eager_view().unwrap();
    assert!(db.s_mut().is_err(), "S is shared with the eager view");
    drop(eager);
    assert!(db.s_mut().is_ok());
}
