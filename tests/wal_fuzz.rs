//! Torn-tail fuzz: truncate the write-ahead log at **every byte offset**
//! and prove recovery always lands on a prefix of committed states.
//!
//! The durable contract is prefix-atomicity: a crash may lose the last
//! commit groups (a torn tail is truncated; deferred groups that never
//! reached a barrier simply are not in the file), but it must never
//! surface a *mix* — some pages from commit `n+1` alongside commit `n`'s
//! view. This harness makes that exhaustive for a multi-commit group
//! file: every possible crash point in the log, byte by byte, reopens
//! the store and checks the recovered image against the exact state the
//! longest sealed prefix defines.
//!
//! It also pins a structural property of group commit: a run that
//! commits with `Durability::Deferred` and seals once at the end writes
//! the **byte-identical** log a barrier-per-commit run writes — deferred
//! durability moves *when* bytes reach disk, never *what* bytes.

use std::fs;
use std::path::{Path, PathBuf};

use trijoin_storage::{Durability, DurableBackend, FileId, PageId, PageWrite, StorageBackend, Wal};

const PS: usize = 256;
/// Commit groups in the log; commit `k` (1-based) rewrites page 0 and
/// writes page `k`, both filled with byte `k` — so every commit is
/// visible at two places and a half-applied group cannot hide.
const COMMITS: u8 = 4;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trijoin-walfuzz-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Build the store: `COMMITS` groups under the given cadence, returning
/// the cumulative log length after each sealed group (`cum[0] == 0`).
/// Under `Deferred` a final empty barrier seals the buffered groups.
fn build(dir: &Path, durability: Durability) -> (FileId, Vec<u64>) {
    let backend = DurableBackend::create(dir, PS).unwrap();
    let file = backend.create_file();
    for _ in 0..=COMMITS as u32 {
        backend.allocate_page(file).unwrap();
    }
    let mut cum = vec![0u64];
    for k in 1..=COMMITS {
        let img = vec![k; PS];
        backend.write_page(PageId::new(file, 0), PageWrite::Borrowed(&img)).unwrap();
        backend.write_page(PageId::new(file, k as u32), PageWrite::Borrowed(&img)).unwrap();
        let stats = backend.commit(durability).unwrap();
        assert_eq!(stats.frames, 2, "commit {k} must log both distinct pages");
        cum.push(cum.last().unwrap() + stats.bytes);
    }
    if durability == Durability::Deferred {
        let seal = backend.commit(Durability::Barrier).unwrap();
        assert_eq!((seal.frames, seal.fsyncs), (0, 1), "one fsync seals every deferred group");
    }
    assert_eq!(backend.wal_len_bytes(), *cum.last().unwrap());
    (file, cum)
}

/// Copy the store into a fresh directory with its log truncated to
/// `log_len` — the on-disk image an OS crash at that byte would leave
/// (data files untouched: nothing was checkpointed).
fn crashed_copy(src: &Path, dst: &Path, log_len: u64) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    let log = fs::OpenOptions::new().write(true).open(dst.join(Wal::FILE_NAME)).unwrap();
    log.set_len(log_len).unwrap();
}

#[test]
fn recovery_from_every_truncation_offset_is_a_committed_prefix() {
    let src = tmp("src");
    let (file, cum) = build(&src, Durability::Barrier);
    let total = *cum.last().unwrap();
    let crash = tmp("crash");

    for len in 0..=total {
        crashed_copy(&src, &crash, len);
        let backend = DurableBackend::open(&crash, PS).unwrap();
        // The longest sealed prefix the truncated log still contains.
        let n = cum.iter().rposition(|&end| end <= len).unwrap() as u8;

        let stats = backend.take_recovery_stats().unwrap_or_default();
        assert_eq!(stats.commits, n as u64, "len {len}: wrong replay depth");
        assert_eq!(stats.frames, 2 * n as u64, "len {len}: wrong frame count");
        assert_eq!(stats.torn_bytes, len - cum[n as usize], "len {len}: wrong torn tail");

        // Page 0 shows the *last* sealed commit, pages 1..=k exactly the
        // sealed ones, later pages still zero — a prefix state, no mix.
        let want_head = vec![n; PS];
        assert_eq!(
            *backend.read_page(PageId::new(file, 0)).unwrap(),
            if n == 0 { vec![0u8; PS] } else { want_head },
            "len {len}: page 0 is not commit {n}'s image"
        );
        for k in 1..=COMMITS {
            let want = if k <= n { vec![k; PS] } else { vec![0u8; PS] };
            assert_eq!(
                *backend.read_page(PageId::new(file, k as u32)).unwrap(),
                want,
                "len {len}: page {k} mixes commit states (prefix is {n})"
            );
        }
    }
}

#[test]
fn deferred_group_commit_writes_the_same_log_bytes_as_barriers() {
    let barrier = tmp("cadence-barrier");
    let deferred = tmp("cadence-deferred");
    let (_, cum_b) = build(&barrier, Durability::Barrier);
    let (_, cum_d) = build(&deferred, Durability::Deferred);
    assert_eq!(cum_b, cum_d, "group boundaries must not depend on the commit cadence");
    let log_b = fs::read(barrier.join(Wal::FILE_NAME)).unwrap();
    let log_d = fs::read(deferred.join(Wal::FILE_NAME)).unwrap();
    assert_eq!(log_b, log_d, "deferred commits must change when bytes land, not which bytes");
}
