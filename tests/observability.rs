//! Tier-2: the observability layer against the real engine — span-tree
//! totals, run-report fidelity, metrics determinism, and the Figure-5
//! white/dark decomposition's exactness.

use trijoin::{Database, Fig5Breakdown, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_common::{EventKind, MetricsSnapshot, RunReport};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: 2_000,
        s_tuples: 2_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.06,
        seed: 7,
    }
}

fn params() -> SystemParams {
    SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() }
}

/// Run one update-then-query epoch of `method` on a fresh database and
/// return it (ledger, metrics and events reflect exactly that epoch).
fn run_epoch(method: Method) -> Database {
    let gen = spec().generate();
    let mut db = Database::new(&params(), gen.r.clone(), gen.s.clone()).unwrap();
    let mut strategy: Box<dyn JoinStrategy> = match method {
        Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
        Method::JoinIndex => Box::new(db.join_index().unwrap()),
        Method::HybridHash => Box::new(db.hybrid_hash()),
    };
    db.reset_observability();
    let mut stream = gen.update_stream();
    for _ in 0..gen.updates_per_epoch() {
        let u = stream.next_update();
        strategy.on_update(&u).unwrap();
        db.apply_r_update(&u).unwrap();
    }
    db.query(strategy.as_mut()).unwrap();
    db
}

#[test]
fn report_sections_match_ledger_for_all_three_strategies() {
    for method in Method::all() {
        let db = run_epoch(method);
        let report = db.run_report(method.label());
        assert_eq!(report.totals, db.cost().total(), "{method:?} totals");
        for (name, ops) in db.cost().sections() {
            assert_eq!(
                report.section_counts(&name),
                ops,
                "{method:?} section {name:?} drifted between report and ledger"
            );
            assert_eq!(db.cost().section_counts(&name), ops);
        }
        assert!(!report.spans.is_empty(), "{method:?} produced no spans");
    }
}

#[test]
fn report_round_trips_through_json_after_a_real_run() {
    let db = run_epoch(Method::MaterializedView);
    let report = db.run_report("round-trip");
    let text = report.to_json().pretty();
    let back = RunReport::parse(&text).unwrap();
    assert_eq!(report, back);
}

#[test]
fn metrics_and_spans_are_deterministic_across_identical_runs() {
    let (a, b) = (run_epoch(Method::JoinIndex), run_epoch(Method::JoinIndex));
    let (snap_a, snap_b): (MetricsSnapshot, MetricsSnapshot) =
        (a.metrics().snapshot(), b.metrics().snapshot());
    assert_eq!(snap_a, snap_b, "two identical runs must produce identical metrics");
    assert_eq!(a.cost().span_tree(), b.cost().span_tree());
    assert_eq!(a.events().emitted(), b.events().emitted());
}

#[test]
fn query_is_observed_with_events_and_counters() {
    let db = run_epoch(Method::HybridHash);
    assert_eq!(db.metrics().counter("db.queries"), 1);
    assert_eq!(db.metrics().counter("db.mutations"), spec().generate().updates_per_epoch());
    assert_eq!(db.events().count_of(EventKind::QueryStart), 1);
    assert_eq!(db.events().count_of(EventKind::QueryEnd), 1);
    let events = db.events().events();
    let end = events.iter().find(|e| e.kind == EventKind::QueryEnd).unwrap();
    assert!(end.detail.contains("strategy=hybrid-hash"), "{:?}", end.detail);
    // The end event's timestamp prices the whole run so far.
    assert_eq!(end.at, db.cost().total());
}

/// Bit-distance between two f64s ("within 1 ULP" made literal).
fn ulp_distance(a: f64, b: f64) -> u64 {
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
}

#[test]
fn fig5_categories_sum_to_the_grand_total_within_one_ulp() {
    for method in Method::all() {
        let db = run_epoch(method);
        let b = Fig5Breakdown::measure(method, db.cost());
        // Integer op counts partition exactly.
        let mut sum = b.white;
        sum.add(&b.dark);
        assert_eq!(sum, b.total, "{method:?} white+dark must equal the ledger total exactly");
        assert!(b.white.ios > 0, "{method:?} measured no white I/O");
        assert!(b.dark.ios > 0, "{method:?} measured no dark work");
        // Priced in simulated seconds the split stays within 1 ULP.
        let p = db.params();
        let total = b.total.time_secs(p);
        let parts = b.white_secs(p) + b.dark_secs(p);
        assert!(
            ulp_distance(total, parts) <= 1,
            "{method:?}: {total} vs {parts} differ by {} ULP",
            ulp_distance(total, parts)
        );
    }
}
