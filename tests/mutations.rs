//! General mutation streams — the paper's future-work case of "arbitrary
//! and possibly unequal sets of insertions and deletions". All three
//! strategies must stay exact when tuples are inserted with fresh
//! surrogates and deleted outright, not just updated in place.

use trijoin::{Database, JoinStrategy, Mutation, MutationMix, SystemParams, WorkloadSpec};
use trijoin_common::{BaseTuple, Surrogate};
use trijoin_exec::{execute_collect, oracle};

fn run_mix(mix: MutationMix, sr: f64, pra: f64, epochs: usize, seed: u64) {
    let params = SystemParams { mem_pages: 48, page_size: 1024, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 1_000,
        s_tuples: 900,
        tuple_bytes: 96,
        sr,
        group_size: 4,
        pra,
        update_rate: 0.1,
        seed,
    };
    let gen = spec.generate();
    let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let mut hh = db.hybrid_hash();
    let mut stream = gen.mutation_stream(mix);
    for epoch in 0..epochs {
        for _ in 0..100 {
            let m = stream.next_mutation();
            mv.on_mutation(&m).unwrap();
            ji.on_mutation(&m).unwrap();
            hh.on_mutation(&m).unwrap();
            db.r_mut().apply_mutation(&m).unwrap();
        }
        assert_eq!(db.r().len(), stream.len() as u64, "mirror and relation agree");
        let current = stream.current();
        let want = oracle::join_tuples(&current, &gen.s);
        let label = format!("epoch {epoch}");
        oracle::assert_same_join(
            &format!("{label}/mv"),
            execute_collect(&mut mv, db.r(), db.s()).unwrap(),
            want.clone(),
        );
        oracle::assert_same_join(
            &format!("{label}/ji"),
            execute_collect(&mut ji, db.r(), db.s()).unwrap(),
            want.clone(),
        );
        oracle::assert_same_join(
            &format!("{label}/hh"),
            execute_collect(&mut hh, db.r(), db.s()).unwrap(),
            want,
        );
        ji.index().check_invariants().unwrap();
    }
}

#[test]
fn churn_mix_updates_inserts_deletes() {
    run_mix(MutationMix::churn(), 0.05, 0.2, 3, 301);
}

#[test]
fn insert_heavy_growth() {
    run_mix(MutationMix { update: 0.1, insert: 0.8, delete: 0.1 }, 0.05, 0.2, 3, 302);
}

#[test]
fn delete_heavy_shrink() {
    run_mix(MutationMix { update: 0.2, insert: 0.1, delete: 0.7 }, 0.1, 0.2, 3, 303);
}

#[test]
fn inserts_only_unequal_sets() {
    // ‖iR‖ > 0, ‖dR‖ = 0 — the degenerate unequal case.
    run_mix(MutationMix { update: 0.0, insert: 1.0, delete: 0.0 }, 0.05, 0.0, 2, 304);
}

#[test]
fn deletes_only_unequal_sets() {
    run_mix(MutationMix { update: 0.0, insert: 0.0, delete: 1.0 }, 0.1, 0.0, 2, 305);
}

#[test]
fn updates_only_matches_legacy_model() {
    run_mix(MutationMix::updates_only(), 0.05, 0.3, 3, 306);
}

#[test]
fn insert_then_delete_same_tuple_cancels() {
    let params = SystemParams { mem_pages: 32, page_size: 512, ..Default::default() };
    let mk = |i: u32, key: u64| BaseTuple::padded(Surrogate(i), key, 64);
    let r: Vec<BaseTuple> = (0..50).map(|i| mk(i, (i % 5) as u64)).collect();
    let s: Vec<BaseTuple> = (0..50).map(|i| mk(i, (i % 5) as u64)).collect();
    let mut db = Database::new(&params, r.clone(), s.clone()).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let baseline = oracle::join_tuples(&r, &s);

    // Insert a matching tuple, then delete it again before the query.
    let t = mk(99, 2);
    for m in [Mutation::Insert(t.clone()), Mutation::Delete(t.clone())] {
        mv.on_mutation(&m).unwrap();
        ji.on_mutation(&m).unwrap();
        db.r_mut().apply_mutation(&m).unwrap();
    }
    oracle::assert_same_join(
        "mv",
        execute_collect(&mut mv, db.r(), db.s()).unwrap(),
        baseline.clone(),
    );
    oracle::assert_same_join("ji", execute_collect(&mut ji, db.r(), db.s()).unwrap(), baseline);
}

#[test]
fn delete_then_reinsert_same_surrogate_with_new_key() {
    let params = SystemParams { mem_pages: 32, page_size: 512, ..Default::default() };
    let mk = |i: u32, key: u64| BaseTuple::padded(Surrogate(i), key, 64);
    let r: Vec<BaseTuple> = (0..50).map(|i| mk(i, (i % 5) as u64)).collect();
    let s: Vec<BaseTuple> = (0..50).map(|i| mk(i, (i % 5) as u64)).collect();
    let mut db = Database::new(&params, r.clone(), s.clone()).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();

    let old = mk(7, 2);
    let new = mk(7, 4);
    for m in [Mutation::Delete(old.clone()), Mutation::Insert(new.clone())] {
        mv.on_mutation(&m).unwrap();
        ji.on_mutation(&m).unwrap();
        db.r_mut().apply_mutation(&m).unwrap();
    }
    let mut current = r.clone();
    current[7] = new;
    let want = oracle::join_tuples(&current, &s);
    oracle::assert_same_join("mv", execute_collect(&mut mv, db.r(), db.s()).unwrap(), want.clone());
    oracle::assert_same_join("ji", execute_collect(&mut ji, db.r(), db.s()).unwrap(), want);
}

#[test]
fn relation_rejects_bad_mutations() {
    let params = SystemParams { mem_pages: 32, page_size: 512, ..Default::default() };
    let mk = |i: u32, key: u64| BaseTuple::padded(Surrogate(i), key, 64);
    let r: Vec<BaseTuple> = (0..10).map(|i| mk(i, 0)).collect();
    let s: Vec<BaseTuple> = (0..10).map(|i| mk(i, 0)).collect();
    let mut db = Database::new(&params, r, s).unwrap();
    // Duplicate insert.
    assert!(db.r_mut().insert(&mk(3, 1)).is_err());
    // Delete of a ghost.
    assert!(db.r_mut().delete(&mk(77, 0)).is_err());
    // Wrong-size insert.
    assert!(db.r_mut().insert(&BaseTuple::padded(Surrogate(50), 0, 128)).is_err());
    // Relation unharmed.
    assert_eq!(db.r().len(), 10);
}
