//! Simulation-harness self-tests: the committed corpus replays clean,
//! and a deliberately planted maintenance bug is caught, minimized to a
//! handful of ops, and round-trips through the JSON repro format.
//!
//! These tests are the harness's own acceptance gate — everything else
//! (`trijoin check`, the CI corpus gate, `trijoin repro`) is a thin CLI
//! wrapper over the same `run_script`/`shrink` calls exercised here.

use std::path::PathBuf;

use trijoin_check::{generate, run_script, shrink, CheckConfig, GenConfig, Sabotage};
use trijoin_common::{Script, ScriptOp, ScriptSpec};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Every committed corpus script must replay with MV ≡ JI ≡ HH ≡ oracle
/// ≡ sharded-serve at every checkpoint, faults included.
#[test]
fn corpus_scripts_pass() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 3, "corpus too small: {paths:?}");

    let mut checkpoints = 0;
    let mut faults = 0;
    let mut crashes = 0;
    let mut shapes_seen: std::collections::BTreeSet<&'static str> = Default::default();
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("corpus file is readable");
        let script =
            Script::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Crash ops are inert in memory: crash-bearing scripts replay on
        // the WAL-backed file backend so the recovery cycles really run.
        let mut cfg = CheckConfig::default();
        if script.ops.iter().any(|op| matches!(op, ScriptOp::Crash { .. })) {
            cfg.durable_root = Some(std::env::temp_dir().join(format!(
                "trijoin-corpus-{}-{}",
                std::process::id(),
                script.name
            )));
        }
        let outcome =
            run_script(&script, &cfg).unwrap_or_else(|f| panic!("{}: {f}", path.display()));
        assert!(outcome.checkpoints > 0, "{}: no checkpoints verified", path.display());
        checkpoints += outcome.checkpoints;
        faults += outcome.faults_installed;
        crashes += outcome.crashes;
        // Adaptive scripts are only worth committing if they make the
        // serving layer migrate — at every configured shard count — while
        // the checkpoints stay oracle-green.
        if script.spec.adaptive {
            assert!(outcome.migrations >= 1, "{}: adaptive script never migrated", path.display());
            for (shards, n) in &outcome.migrations_by_server {
                assert!(
                    *n >= 1,
                    "{}: the {shards}-shard adaptive fleet never migrated",
                    path.display()
                );
            }
        }
        if let Some(adv) = &script.spec.adversary {
            shapes_seen.insert(adv.shape.as_str());
        }
    }
    // The corpus as a whole must exercise the fault-recovery path, or the
    // §8 half of the equivalence claim goes untested.
    assert!(faults > 0, "corpus installs no fault plans");
    // Likewise the crash-recovery path: at least one committed script
    // must drive durable crash/recover cycles.
    assert!(crashes > 0, "corpus runs no crash-recovery cycles");
    assert!(checkpoints >= 20, "corpus only verifies {checkpoints} checkpoints");
    // And the adversary grammar: every traffic shape has committed seeds
    // driving the adaptive migration machinery.
    let mut want_shapes: Vec<&str> =
        trijoin_common::AdversaryShape::all().iter().map(|s| s.as_str()).collect();
    want_shapes.sort_unstable();
    assert_eq!(
        shapes_seen.iter().copied().collect::<Vec<_>>(),
        want_shapes,
        "corpus must carry seeds for every adversary shape"
    );
}

/// The acceptance criterion from the issue: plant a bug (payload-only
/// updates not forwarded to the cached structures — the `Pr_A` filter
/// applied where it must not be), and the harness must catch it and
/// shrink the repro to ≤ 15 ops.
#[test]
fn planted_pra_bug_is_caught_and_shrunk() {
    let script = generate(&GenConfig::new(0, 40));
    let sabotaged = CheckConfig { sabotage: Sabotage::SkipPraFilter, ..CheckConfig::default() };

    let failure = run_script(&script, &sabotaged).expect_err("planted bug must be caught");
    assert!(
        failure.message.contains("stale payloads"),
        "the bug manifests as stale view payloads, got: {failure}"
    );

    let result = shrink(&script, &sabotaged).expect("a failing script shrinks");
    let shrunk = &result.script;
    assert!(shrunk.ops.len() <= 15, "repro has {} ops (> 15): {:?}", shrunk.ops.len(), shrunk.ops);
    assert!(shrunk.ops.len() < script.ops.len(), "shrinking removed nothing");

    // 1-minimality is what ddmin promises; spot-check the endpoints: the
    // shrunk script still fails, and relief of the sabotage clears it —
    // so the repro isolates the planted bug, not some harness artifact.
    run_script(shrunk, &sabotaged).expect_err("shrunk repro still fails");
    run_script(shrunk, &CheckConfig::default())
        .expect("shrunk repro passes without the planted bug");

    // The repro a user replays with `trijoin repro` is the JSON file, so
    // the failure must survive the round-trip byte-for-byte.
    let reloaded = Script::from_json_str(&shrunk.to_json_string()).expect("repro parses");
    assert_eq!(&reloaded, shrunk, "JSON round-trip changed the script");
    let replayed = run_script(&reloaded, &sabotaged).expect_err("reloaded repro still fails");
    assert_eq!(replayed.site, result.failure.site);
}

/// A join-attribute update whose new key lives on a different shard is
/// routed as a delete on the old owner plus an insert on the new one.
/// The router admits both halves in one call, so no serve-batch
/// boundary — not an explicit `Batch` flush, not a batch-full flush
/// with `batch: 1`, not the flush a `Checkpoint` query forces — may
/// land between them: every checkpoint must observe either both halves
/// applied or neither, at every shard count.
#[test]
fn cross_shard_splits_never_straddle_a_batch_checkpoint() {
    // Walk a small R through a spread of join keys. The multiply-shift
    // partition scatters 0..24 over every shard, so with 2 and 4 shards
    // most modifies move their tuple between shards (verified below),
    // exercising the split delete+insert path again and again.
    let keys: Vec<u64> = (0..24).collect();
    for shards in [2usize, 4] {
        let hit: std::collections::HashSet<usize> =
            keys.iter().map(|&k| trijoin_common::shard_of_key(k, shards)).collect();
        assert_eq!(hit.len(), shards, "key set must cover all {shards} shards");
    }

    let mut ops = Vec::new();
    for round in 0..6u64 {
        for pick in 0..4u64 {
            let key = keys[(round * 4 + pick) as usize];
            ops.push(ScriptOp::ModifyJoinR { pick, key, tag: round * 10 + pick });
            // Batch boundaries between, and right after, split admissions.
            if pick % 2 == 0 {
                ops.push(ScriptOp::Batch);
            }
        }
        ops.push(ScriptOp::Checkpoint);
    }
    let script = Script {
        name: "cross-shard-splits".to_string(),
        spec: ScriptSpec {
            r_tuples: 8,
            s_tuples: 8,
            tuple_bytes: 64,
            sr: 1.0,
            group_size: 2,
            seed: 1234,
            adversary: None,
            adaptive: false,
        },
        shard_counts: vec![1, 2, 4],
        // Flush on every admitted mutation: if the serve layer could
        // ever split a delete+insert pair across batches, this is the
        // configuration that would do it.
        batch: 1,
        ops,
    };
    let outcome = run_script(&script, &CheckConfig::default())
        .expect("split delete+insert pairs stay atomic across batch boundaries");
    assert_eq!(outcome.checkpoints, 6);
    assert_eq!(outcome.applied, 24, "every join-attribute modify must land");
}

/// Same seed, same script, same replay statistics — determinism is the
/// property that makes a repro file worth committing.
#[test]
fn generated_scripts_replay_deterministically() {
    let cfg = GenConfig::new(7, 60);
    let (a, b) = (generate(&cfg), generate(&cfg));
    assert_eq!(a, b);
    let check = CheckConfig::default();
    let oa = run_script(&a, &check).expect("seed 7 replays clean");
    let ob = run_script(&b, &check).expect("seed 7 replays clean");
    assert_eq!(oa, ob);
}

/// Every adversary shape must drive the adaptive serving fleet into at
/// least one migration per shard count — with every checkpoint still
/// oracle-green while those migrations are in flight. This is the fresh
/// generation counterpart of the committed-corpus gate above, so the
/// property holds beyond the eight committed seeds.
#[test]
fn fresh_adversarial_scripts_migrate_and_stay_oracle_green() {
    for shape in trijoin_common::AdversaryShape::all() {
        let cfg = GenConfig::adversarial(3, 120, shape);
        let (a, b) = (generate(&cfg), generate(&cfg));
        assert_eq!(a, b, "{shape:?}: adversarial generation must be deterministic");
        let outcome =
            run_script(&a, &CheckConfig::default()).unwrap_or_else(|f| panic!("{shape:?}: {f}"));
        assert!(outcome.checkpoints > 0, "{shape:?}: no checkpoints verified");
        assert!(outcome.migrations >= 1, "{shape:?}: adaptive fleet never migrated");
        for (shards, n) in &outcome.migrations_by_server {
            assert!(*n >= 1, "{shape:?}: the {shards}-shard fleet never migrated");
        }
    }
}

/// Metamorphic: turning adaptive serving on must never change checkpoint
/// answers. The same plain (v2-shaped) script replays oracle-green with
/// and without migrations enabled, and with identical apply/skip counts —
/// migration is a serving-layer concern, invisible to query results.
#[test]
fn enabling_adaptive_serving_never_changes_checkpoint_answers() {
    let plain = generate(&GenConfig::new(11, 80));
    assert!(!plain.spec.adaptive);
    let mut adaptive = plain.clone();
    adaptive.spec.adaptive = true;
    adaptive.name = format!("{}-adaptive", plain.name);

    let check = CheckConfig::default();
    let base = run_script(&plain, &check).expect("plain script replays clean");
    let live = run_script(&adaptive, &check).expect("adaptive flip replays clean");
    assert_eq!(base.checkpoints, live.checkpoints);
    assert_eq!(base.applied, live.applied);
    assert_eq!(base.skipped, live.skipped);
}

/// Shrinking is only defined for failing scripts.
#[test]
fn shrink_of_a_passing_script_is_none() {
    let script = generate(&GenConfig::new(7, 30));
    assert!(shrink(&script, &CheckConfig::default()).is_none());
}

/// Deterministically inert ops (duplicate-surrogate inserts, deletes at
/// the one-tuple floor) are skipped, not applied — the rule that makes
/// every shrinking subsequence a well-formed script.
#[test]
fn inert_ops_are_skipped_deterministically() {
    let script = Script {
        name: "inert-ops".to_string(),
        spec: ScriptSpec {
            r_tuples: 4,
            s_tuples: 4,
            tuple_bytes: 64,
            sr: 1.0,
            group_size: 2,
            seed: 99,
            adversary: None,
            adaptive: false,
        },
        shard_counts: vec![1, 2],
        batch: 4,
        ops: vec![
            // Initial surrogates are 0..4 on each side: sur 0 is live.
            ScriptOp::InsertR { sur: 0, key: 1, tag: 7 },
            ScriptOp::InsertR { sur: 100, key: 1, tag: 8 },
            // Drain S to its one-tuple floor; the fourth delete is inert.
            ScriptOp::DeleteS { pick: 0 },
            ScriptOp::DeleteS { pick: 0 },
            ScriptOp::DeleteS { pick: 0 },
            ScriptOp::DeleteS { pick: 0 },
            ScriptOp::Checkpoint,
        ],
    };
    let outcome = run_script(&script, &CheckConfig::default()).expect("replays clean");
    assert_eq!(outcome.applied, 4, "one insert and three deletes land");
    assert_eq!(outcome.skipped, 2, "duplicate insert and floor delete are inert");
    assert_eq!(outcome.checkpoints, 1);
}
