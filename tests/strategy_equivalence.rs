//! Workspace-level equivalence: through the public `trijoin` facade, the
//! three strategies must return exactly the current join across multiple
//! update/query epochs, for a spread of selectivities, update rates and
//! `Pr_A` values from the paper's parameter family.

use trijoin::{Database, JoinStrategy, WorkloadSpec};
use trijoin_common::SystemParams;
use trijoin_exec::{execute_collect, oracle};

fn run_scenario(sr: f64, update_rate: f64, pra: f64, epochs: usize, seed: u64) {
    let params = SystemParams { mem_pages: 48, page_size: 1024, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 1_500,
        s_tuples: 1_200,
        tuple_bytes: 96,
        sr,
        group_size: 4,
        pra,
        update_rate,
        seed,
    };
    let gen = spec.generate();
    let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let mut hh = db.hybrid_hash();
    let mut stream = gen.update_stream();
    for epoch in 0..epochs {
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            mv.on_update(&u).unwrap();
            ji.on_update(&u).unwrap();
            hh.on_update(&u).unwrap();
            db.r_mut().apply_update(&u.old, &u.new).unwrap();
        }
        let want = oracle::join_tuples(stream.current(), &gen.s);
        let label = format!("sr={sr} rate={update_rate} pra={pra} epoch={epoch}");
        oracle::assert_same_join(
            &format!("{label}/mv"),
            execute_collect(&mut mv, db.r(), db.s()).unwrap(),
            want.clone(),
        );
        oracle::assert_same_join(
            &format!("{label}/ji"),
            execute_collect(&mut ji, db.r(), db.s()).unwrap(),
            want.clone(),
        );
        oracle::assert_same_join(
            &format!("{label}/hh"),
            execute_collect(&mut hh, db.r(), db.s()).unwrap(),
            want,
        );
    }
}

#[test]
fn low_selectivity_low_activity() {
    run_scenario(0.005, 0.02, 0.1, 3, 101);
}

#[test]
fn moderate_selectivity_moderate_activity() {
    run_scenario(0.05, 0.06, 0.1, 3, 102);
}

#[test]
fn high_selectivity() {
    run_scenario(0.5, 0.04, 0.1, 2, 103);
}

#[test]
fn high_update_activity() {
    run_scenario(0.05, 0.4, 0.1, 3, 104);
}

#[test]
fn high_pra_every_update_hits_the_join_attribute() {
    run_scenario(0.05, 0.1, 1.0, 3, 105);
}

#[test]
fn zero_pra_payload_only_updates() {
    run_scenario(0.05, 0.1, 0.0, 2, 106);
}

#[test]
fn empty_join_stays_empty_through_epochs() {
    run_scenario(0.0, 0.1, 0.5, 2, 107);
}

#[test]
fn tiny_memory_forces_multipass_everywhere() {
    let params = SystemParams { mem_pages: 12, page_size: 512, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 800,
        s_tuples: 800,
        tuple_bytes: 64,
        sr: 0.1,
        group_size: 4,
        pra: 0.3,
        update_rate: 0.2,
        seed: 108,
    };
    let gen = spec.generate();
    let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let mut stream = gen.update_stream();
    for _ in 0..gen.updates_per_epoch() {
        let u = stream.next_update();
        mv.on_update(&u).unwrap();
        ji.on_update(&u).unwrap();
        db.r_mut().apply_update(&u.old, &u.new).unwrap();
    }
    let want = oracle::join_tuples(stream.current(), &gen.s);
    oracle::assert_same_join(
        "tiny-mem/mv",
        execute_collect(&mut mv, db.r(), db.s()).unwrap(),
        want.clone(),
    );
    oracle::assert_same_join(
        "tiny-mem/ji",
        execute_collect(&mut ji, db.r(), db.s()).unwrap(),
        want,
    );
}
