//! Telemetry and cost-audit integration tests: the predicted-vs-actual
//! audit must vouch for the stock analytical model on the committed
//! corpus (no `CostDrift` events at calibration 1.0) while a deliberately
//! miscalibrated model parameter trips the detector immediately — the
//! pair of properties that makes the drift hook trustworthy as a
//! regression tripwire rather than a noise source.

use std::path::PathBuf;

use trijoin::{measure_workload, Database, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_check::{generate, run_script, CheckConfig, GenConfig};
use trijoin_common::{EventKind, Script, TelemetryConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_scripts() -> Vec<Script> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).expect("corpus file is readable");
            Script::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
        })
        .collect()
}

/// The stock model, audited at calibration 1.0 over every corpus script,
/// stays inside the drift threshold: zero `CostDrift` events. If this
/// fires, either the model or a strategy implementation changed cost
/// shape — exactly the regression the audit exists to catch.
#[test]
fn stock_model_stays_under_drift_threshold_on_the_corpus() {
    let cfg = CheckConfig::default();
    assert_eq!(cfg.audit_calibration, 1.0, "default audits the stock model");
    for script in corpus_scripts() {
        let outcome = run_script(&script, &cfg).unwrap_or_else(|f| panic!("{}: {f}", script.name));
        assert_eq!(
            outcome.cost_drift_events, 0,
            "{}: stock model drifted past the threshold",
            script.name
        );
    }
}

/// A model miscalibrated by 2^12 (predictions scaled 4096×) must raise
/// `CostDrift` on the same traffic the stock model passes: the detector
/// has teeth, and the threshold separates the two regimes cleanly.
#[test]
fn miscalibrated_model_raises_cost_drift() {
    let script = generate(&GenConfig::new(21, 60));
    let stock = CheckConfig::default();
    let skewed = CheckConfig { audit_calibration: 4096.0, ..CheckConfig::default() };

    let clean = run_script(&script, &stock).expect("script replays clean");
    assert_eq!(clean.cost_drift_events, 0, "stock model must not drift");

    let drifted = run_script(&script, &skewed).expect("miscalibration changes no answers");
    assert!(drifted.cost_drift_events > 0, "4096x miscalibration must trip the drift detector");
    // Everything except the audit verdict is untouched: the audit is an
    // observer, never a participant.
    assert_eq!(clean.checkpoints, drifted.checkpoints);
    assert_eq!(clean.applied, drifted.applied);
}

/// Engine-level audit anatomy: every query cycle of every paper strategy
/// records a predicted-vs-actual pair under `cycle.<strategy>`, applies
/// record under `apply`, and the drift events carry the offending
/// section. A stand-alone engine (no check harness) exercises the same
/// hooks the serve shards use.
#[test]
fn every_cycle_and_apply_is_audited() {
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 300,
        s_tuples: 200,
        tuple_bytes: 48,
        sr: 0.2,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.1,
        seed: 17,
    };
    let w = spec.generate();
    let mut db = Database::new(&params, w.r.clone(), w.s.clone()).unwrap();
    db.enable_telemetry(TelemetryConfig::default());
    db.enable_cost_audit(measure_workload(&w.r, &w.s, 0.1, 0.0), 1.0);

    let mut mv = db.materialized_view().unwrap();
    let mut ji = db.join_index().unwrap();
    let mut hh = db.hybrid_hash();
    let mut updates = w.update_stream();
    for round in 0..3 {
        for _ in 0..5 {
            let u = updates.next_update();
            mv.on_update(&u).unwrap();
            ji.on_update(&u).unwrap();
            hh.on_update(&u).unwrap();
            db.apply_r_update(&u).unwrap();
        }
        db.query(&mut mv).unwrap();
        db.query(&mut ji).unwrap();
        db.query(&mut hh).unwrap();
        let _ = round;
    }

    let report = db.run_report("audited");
    assert_eq!(report.series.len(), 1, "engine telemetry serializes one series");
    let series = &report.series[0];
    assert_eq!(series.name, "engine");
    assert_eq!(series.domain, "ops");

    for method in Method::all() {
        let section = format!("cycle.{}", method.label());
        let entry = series
            .audit_section(&section)
            .unwrap_or_else(|| panic!("missing audit section {section}"));
        assert_eq!(entry.samples, 3, "{section}: one audit record per query cycle");
        assert!(entry.predicted_us > 0.0, "{section}: model predicted a positive cost");
        assert!(entry.actual_us > 0.0, "{section}: ledger charged a positive cost");
    }
    let apply = series.audit_section("apply").expect("apply section present");
    assert_eq!(apply.samples, 15, "one audit record per applied update");

    // Stock calibration stays quiet on this workload.
    assert!(
        !report.events.iter().any(|e| e.kind == EventKind::CostDrift),
        "stock model must not raise CostDrift here"
    );

    // The audit never charges the simulated ledger: a twin run without
    // telemetry produces the identical cost totals.
    let mut twin = Database::new(&params, w.r.clone(), w.s.clone()).unwrap();
    let mut mv2 = twin.materialized_view().unwrap();
    let mut ji2 = twin.join_index().unwrap();
    let mut hh2 = twin.hybrid_hash();
    let mut updates2 = w.update_stream();
    for _ in 0..3 {
        for _ in 0..5 {
            let u = updates2.next_update();
            mv2.on_update(&u).unwrap();
            ji2.on_update(&u).unwrap();
            hh2.on_update(&u).unwrap();
            twin.apply_r_update(&u).unwrap();
        }
        twin.query(&mut mv2).unwrap();
        twin.query(&mut ji2).unwrap();
        twin.query(&mut hh2).unwrap();
    }
    let quiet = twin.run_report("quiet");
    assert_eq!(quiet.totals, report.totals, "telemetry must charge nothing to the ledger");
    assert!(quiet.series.is_empty(), "telemetry is strictly opt-in");
}

/// The drift events a miscalibrated engine emits are typed and carry the
/// offending section in their detail line.
#[test]
fn drift_events_name_the_offending_section() {
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 200,
        s_tuples: 150,
        tuple_bytes: 48,
        sr: 0.2,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.1,
        seed: 29,
    };
    let w = spec.generate();
    let db = Database::new(&params, w.r.clone(), w.s.clone()).unwrap();
    db.enable_telemetry(TelemetryConfig::default());
    db.enable_cost_audit(measure_workload(&w.r, &w.s, 0.1, 0.0), 4096.0);

    let mut hh = db.hybrid_hash();
    for _ in 0..4 {
        db.query(&mut hh).unwrap();
    }
    let report = db.run_report("drifted");
    let drift: Vec<_> = report.events.iter().filter(|e| e.kind == EventKind::CostDrift).collect();
    assert!(!drift.is_empty(), "4096x miscalibration must raise CostDrift");
    for e in &drift {
        assert!(
            e.detail.contains("section=cycle.hybrid-hash"),
            "drift detail names the section: {}",
            e.detail
        );
        assert!(e.detail.contains("log2="), "drift detail carries the ratio: {}", e.detail);
    }
}
