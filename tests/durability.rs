//! Durability acceptance: the WAL-backed file backend must recover to
//! *equivalence* — after any crash (cold drop, torn log tail, sealed-but-
//! unapplied log), reopening a store yields exactly the last committed
//! state, every strategy answers the oracle join over it, recovery is
//! idempotent under repetition, and checkpoints bound the log.
//!
//! The driver-level tests replay generated crash-heavy scripts through
//! `trijoin_check::run_script` with a durable root, covering all three
//! strategies and every configured shard count in one sweep.

use std::path::PathBuf;

use trijoin::{Database, Durability, Mutation, SystemParams};
use trijoin_check::{generate, run_script, CheckConfig, GenConfig};
use trijoin_common::{BaseTuple, Surrogate, ViewTuple};
use trijoin_exec::oracle;
use trijoin_model::Method;
use trijoin_serve::{ServeConfig, Server};
use trijoin_storage::CommitSabotage;

fn params() -> SystemParams {
    SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() }
}

/// A per-test scratch directory, wiped at the start so reruns are clean
/// and left on disk afterwards for post-mortem inspection.
fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("trijoin-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tuples(n: u32, base: u32) -> Vec<BaseTuple> {
    (0..n).map(|i| BaseTuple::padded(Surrogate(base + i), (i % 7) as u64, 64)).collect()
}

fn canon(mut v: Vec<ViewTuple>) -> Vec<ViewTuple> {
    v.sort_by_key(|t| (t.r_sur.0, t.s_sur.0));
    v
}

/// Query the recovered database with all three freshly rebuilt
/// strategies and assert each answers the oracle join over `(r, s)`.
fn assert_all_strategies_agree(db: &Database, r: &[BaseTuple], s: &[BaseTuple]) {
    let want = canon(oracle::join_tuples(r, s));
    let mut mv = db.materialized_view().expect("rebuild MV on recovered store");
    assert_eq!(canon(db.query(&mut mv).unwrap()), want, "materialized view diverges");
    let mut ji = db.join_index().expect("rebuild JI on recovered store");
    assert_eq!(canon(db.query(&mut ji).unwrap()), want, "join index diverges");
    let mut hh = db.hybrid_hash();
    assert_eq!(canon(db.query(&mut hh).unwrap()), want, "hybrid hash diverges");
}

/// Mutations applied on top of the initial load: a committed batch and an
/// uncommitted tail, with the mirror updated alongside.
fn apply_batch(db: &mut Database, mirror: &mut Vec<BaseTuple>, base: u32) {
    for i in 0..8u32 {
        let t = BaseTuple::padded(Surrogate(base + i), (i % 7) as u64, 64);
        db.r_mut().apply_mutation(&Mutation::Insert(t.clone())).unwrap();
        mirror.push(t);
    }
    let victim = mirror.remove(3);
    db.r_mut().apply_mutation(&Mutation::Delete(victim)).unwrap();
}

/// Recover-to-equivalence under every crash flavour: the reopened store
/// holds exactly what was durable at the kill point, and all three
/// strategies reproduce the oracle join over it.
#[test]
fn every_crash_flavour_recovers_to_the_committed_state() {
    for (name, mode) in [
        ("cold", None),
        ("torn", Some(CommitSabotage::TornWal)),
        ("skip-apply", Some(CommitSabotage::SkipApply)),
    ] {
        let dir = fresh_dir(&format!("flavour-{name}"));
        let (r0, s0) = (tuples(40, 0), tuples(30, 0));
        let mut committed = r0.clone();
        let mut db = Database::create_durable(&params(), r0, s0.clone(), &dir).unwrap();

        apply_batch(&mut db, &mut committed, 1000);
        db.commit().unwrap();

        // The in-flight tail: durable only when the sabotage seals the log.
        let mut tail_state = committed.clone();
        apply_batch(&mut db, &mut tail_state, 2000);
        match mode {
            None => {} // die cold: overlay dropped with the process
            Some(CommitSabotage::TornWal) => {
                db.sabotage_next_commit(CommitSabotage::TornWal);
                assert!(db.commit().is_err(), "torn-WAL commit must fail");
            }
            Some(CommitSabotage::SkipApply) => {
                db.sabotage_next_commit(CommitSabotage::SkipApply);
                db.commit().unwrap();
                committed = tail_state.clone();
            }
        }
        drop(db);

        let db = Database::open_durable(&params(), &dir).unwrap();
        if mode == Some(CommitSabotage::TornWal) {
            assert!(
                db.metrics().counter("wal.recovered.torn_bytes") > 0,
                "recovery must report the truncated torn tail"
            );
        }
        if mode == Some(CommitSabotage::SkipApply) {
            assert!(
                db.metrics().counter("wal.recovered.commits") > 0,
                "recovery must redo the sealed-but-unapplied commit"
            );
        }
        assert_all_strategies_agree(&db, &committed, &s0);
    }
}

/// Running recovery twice must be a fixpoint: the first open replays and
/// truncates the log, so a second open (another "crash" before any new
/// commit) replays nothing and answers identically.
#[test]
fn double_recovery_is_idempotent() {
    let dir = fresh_dir("double");
    let (r0, s0) = (tuples(40, 0), tuples(30, 0));
    let mut committed = r0.clone();
    let mut db = Database::create_durable(&params(), r0, s0.clone(), &dir).unwrap();
    apply_batch(&mut db, &mut committed, 1000);
    db.sabotage_next_commit(CommitSabotage::SkipApply);
    db.commit().unwrap();
    drop(db);

    let first = Database::open_durable(&params(), &dir).unwrap();
    assert!(first.metrics().counter("wal.recovered.frames") > 0, "first open replays the log");
    let mut hh = first.hybrid_hash();
    let answer = canon(first.query(&mut hh).unwrap());
    drop(hh);
    drop(first); // no commit: simulates dying again right after recovery

    let second = Database::open_durable(&params(), &dir).unwrap();
    assert_eq!(
        second.metrics().counter("wal.recovered.frames"),
        0,
        "recovery already truncated the log; a second pass replays nothing"
    );
    let mut hh = second.hybrid_hash();
    assert_eq!(canon(second.query(&mut hh).unwrap()), answer);
    assert_all_strategies_agree(&second, &committed, &s0);
}

/// Group commit's crash contract: a [`Durability::Deferred`] commit is
/// buffered, not fsynced — dying before a barrier rolls it back cleanly,
/// while a later barrier seals every buffered group at once.
#[test]
fn deferred_commits_roll_back_unless_a_barrier_seals_them() {
    let dir = fresh_dir("deferred");
    let (r0, s0) = (tuples(40, 0), tuples(30, 0));
    let committed = r0.clone();
    let mut db = Database::create_durable(&params(), r0, s0.clone(), &dir).unwrap();

    // A deferred batch reaches the log buffer only: no fsync, and a
    // crash before any barrier loses the whole group, not part of it.
    let mut lost = committed.clone();
    apply_batch(&mut db, &mut lost, 1000);
    let stats = db.commit_with(Durability::Deferred).unwrap();
    assert!(stats.frames > 0, "the deferred group carries page frames");
    assert_eq!(stats.fsyncs, 0, "a deferred commit must not fsync");
    drop(db); // crash before the barrier: the group never reached disk

    let mut db = Database::open_durable(&params(), &dir).unwrap();
    assert_all_strategies_agree(&db, &committed, &s0);

    // Deferred then Barrier: the barrier seals *both* groups in one
    // fsync, and both survive the next crash.
    let mut sealed = committed.clone();
    apply_batch(&mut db, &mut sealed, 2000);
    db.commit_with(Durability::Deferred).unwrap();
    apply_batch(&mut db, &mut sealed, 3000);
    let barrier = db.commit().unwrap();
    assert!(barrier.fsyncs >= 1, "the barrier seals the buffered groups");
    drop(db);

    let db = Database::open_durable(&params(), &dir).unwrap();
    assert!(
        db.metrics().counter("wal.recovered.commits") >= 2,
        "recovery replays both groups the barrier sealed"
    );
    assert_all_strategies_agree(&db, &sealed, &s0);
}

/// Skip-clean framing at the database level: every durable commit
/// rewrites the catalog, but when its bytes match the committed image
/// the page is dropped from the group — a no-op commit logs nothing.
#[test]
fn skip_clean_framing_drops_byte_identical_pages() {
    let dir = fresh_dir("skip-clean");
    let (r0, s0) = (tuples(40, 0), tuples(30, 0));
    let mut committed = r0.clone();
    let mut db = Database::create_durable(&params(), r0, s0.clone(), &dir).unwrap();
    apply_batch(&mut db, &mut committed, 1000);
    let first = db.commit().unwrap();
    assert!(first.frames > 0, "a real batch seals page frames");

    // Nothing changed since: the catalog rewrite is byte-identical to
    // its committed image, so the whole group collapses to zero bytes.
    let noop = db.commit().unwrap();
    assert_eq!(noop.frames, 0, "a no-op commit must log no page frames");
    assert_eq!(noop.bytes, 0, "a no-op commit must append no log bytes");
    assert!(noop.frames_skipped > 0, "the clean catalog pages are skipped, not logged");
    assert!(
        db.metrics().counter("wal.frames_skipped") >= noop.frames_skipped,
        "skipped frames surface in the wal.* accounting"
    );

    // Skipping clean pages must not weaken recovery: the next real
    // batch commits, and a crash replays to the full committed state.
    apply_batch(&mut db, &mut committed, 2000);
    assert!(db.commit().unwrap().frames > 0);
    drop(db);

    let db = Database::open_durable(&params(), &dir).unwrap();
    assert_all_strategies_agree(&db, &committed, &s0);
}

/// Checkpoints bound the log: after `checkpoint()` the WAL is empty, the
/// truncated bytes are reported, and a reopen replays nothing.
#[test]
fn checkpoint_truncates_the_log() {
    let dir = fresh_dir("checkpoint");
    let (r0, s0) = (tuples(40, 0), tuples(30, 0));
    let mut committed = r0.clone();
    let mut db = Database::create_durable(&params(), r0, s0.clone(), &dir).unwrap();
    for base in [1000u32, 2000, 3000] {
        apply_batch(&mut db, &mut committed, base);
        let stats = db.commit().unwrap();
        assert!(stats.frames > 0, "each commit seals page frames");
    }
    assert!(db.metrics().gauge("wal.len_bytes").unwrap_or(0.0) > 0.0, "log grew across commits");

    let stats = db.checkpoint().unwrap();
    assert!(stats.truncated_bytes > 0, "checkpoint reports the bytes it dropped");
    assert_eq!(db.metrics().gauge("wal.len_bytes"), Some(0.0), "log restarts empty");
    assert!(db.metrics().counter("wal.checkpoints") > 0);
    drop(db);

    let db = Database::open_durable(&params(), &dir).unwrap();
    assert_eq!(db.metrics().counter("wal.recovered.frames"), 0, "nothing left to replay");
    assert_all_strategies_agree(&db, &committed, &s0);
}

/// Shard-local serve recovery: kill a durable 4-shard server with an
/// applied-but-uncommitted tail; `Server::recover` must come back to the
/// last commit barrier and answer the oracle join for every method.
#[test]
fn serve_recovers_shard_locally_to_the_last_barrier() {
    let dir = fresh_dir("serve");
    let (r0, s0) = (tuples(40, 0), tuples(30, 0));
    let config = ServeConfig { batch: 4, durable_dir: Some(dir), ..ServeConfig::new(params(), 4) };
    let server = Server::start(&config, r0.clone(), s0.clone()).unwrap();
    let session = server.session().unwrap();

    let mut committed = r0;
    for i in 0..8u32 {
        let t = BaseTuple::padded(Surrogate(1000 + i), (i % 7) as u64, 64);
        session.update_r(Mutation::Insert(t.clone())).unwrap();
        committed.push(t);
    }
    session.commit().unwrap();

    // Applied (flushed to the shards) but never committed: rolled back.
    for i in 0..8u32 {
        let t = BaseTuple::padded(Surrogate(2000 + i), (i % 7) as u64, 64);
        session.update_r(Mutation::Insert(t)).unwrap();
    }
    session.flush().unwrap();
    drop(session);
    drop(server); // shard threads exit without committing — the "crash"

    let recovered = Server::recover(&config).unwrap();
    let session = recovered.session().unwrap();
    let want = canon(oracle::join_tuples(&committed, &s0));
    for method in Method::all() {
        assert_eq!(canon(session.query(method).unwrap()), want, "{method} diverges after recovery");
    }
    let report = session.report().unwrap();
    assert_eq!(report.shards.len(), 4, "all four shards recovered");
    let recovered_commits: u64 =
        report.shards.iter().map(|s| s.metrics.counter("wal.recovered.commits")).sum();
    assert!(recovered_commits > 0, "recovery replayed the sealed barriers shard-locally");
}

/// End-to-end crash-heavy replay: a generated script with crash ops runs
/// on the durable backend through the full differential harness — three
/// engines, the oracle, and 1/2/4-shard servers — and every checkpoint
/// after every recovery still agrees.
#[test]
fn crash_heavy_generated_script_replays_to_equivalence() {
    let gen_cfg = GenConfig { crash_pct: 100, ..GenConfig::new(33, 90) };
    let script = generate(&gen_cfg);
    assert!(
        script.ops.iter().any(|op| matches!(op, trijoin_common::ScriptOp::Crash { .. })),
        "generator must emit crash ops at crash_pct=100"
    );

    let cfg = CheckConfig { durable_root: Some(fresh_dir("crash-heavy")), ..Default::default() };
    let outcome =
        run_script(&script, &cfg).unwrap_or_else(|f| panic!("durable replay failed: {f}"));
    assert!(outcome.crashes >= 1, "no crash-recovery cycle ran");
    assert!(outcome.checkpoints >= 1, "no checkpoint verified after recovery");

    // The same script on the in-memory backend treats crashes as no-ops.
    let inert = run_script(&script, &CheckConfig::default())
        .unwrap_or_else(|f| panic!("in-memory replay failed: {f}"));
    assert_eq!(inert.crashes, 0, "crash ops are inert without a durable root");
}
